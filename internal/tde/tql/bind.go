package tql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// Catalog resolves table references during binding. *storage.Database
// satisfies it.
type Catalog interface {
	Table(schema, name string) (*storage.Table, error)
}

// Options configures binding.
type Options struct {
	// DefaultSchema qualifies unqualified table names; defaults to "Extract".
	DefaultSchema string
}

// Compile parses and binds a TQL query against the catalog, producing a
// typed logical plan.
func Compile(src string, cat Catalog, opt Options) (plan.Node, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Bind(s, cat, opt)
}

// Bind resolves a parsed TQL tree into a logical plan: name resolution,
// type checking and promotion, and the classic compiler rewrites
// (DISTINCT as GROUP BY, projection insertion under aggregates).
func Bind(s *SExpr, cat Catalog, opt Options) (plan.Node, error) {
	if opt.DefaultSchema == "" {
		opt.DefaultSchema = "Extract"
	}
	b := &binder{cat: cat, opt: opt}
	return b.bindNode(s)
}

type scopeCol struct {
	qual string // lower-case table qualifier, "" for computed columns
	info plan.ColInfo
	// shadow marks the right side of an equi-join key whose name matches
	// the left side: the two are interchangeable, so unqualified references
	// resolve to the left column instead of being ambiguous.
	shadow bool
}

type scope struct {
	cols []scopeCol
}

func scopeOf(n plan.Node, qual string) *scope {
	sch := n.Schema()
	sc := &scope{cols: make([]scopeCol, len(sch))}
	for i, c := range sch {
		sc.cols[i] = scopeCol{qual: strings.ToLower(qual), info: c}
	}
	return sc
}

func (sc *scope) resolve(name string) (int, plan.ColInfo, bool, error) {
	lower := strings.ToLower(name)
	// Unqualified or exact-name match first, ignoring shadowed join keys.
	matches := []int{}
	for i, c := range sc.cols {
		if !c.shadow && strings.ToLower(c.info.Name) == lower {
			matches = append(matches, i)
		}
	}
	if len(matches) == 0 {
		for i, c := range sc.cols {
			if c.shadow && strings.ToLower(c.info.Name) == lower {
				matches = append(matches, i)
			}
		}
	}
	if len(matches) == 1 {
		return matches[0], sc.cols[matches[0]].info, true, nil
	}
	if len(matches) > 1 {
		return 0, plan.ColInfo{}, false, fmt.Errorf("ambiguous column %q", name)
	}
	// Qualified form "qual.col" or "schema.qual.col".
	if dot := strings.LastIndex(lower, "."); dot > 0 {
		qual, col := lower[:dot], lower[dot+1:]
		for i, c := range sc.cols {
			if strings.ToLower(c.info.Name) != col || c.qual == "" {
				continue
			}
			if c.qual == qual || strings.HasSuffix(qual, "."+c.qual) {
				return i, c.info, true, nil
			}
		}
	}
	return 0, plan.ColInfo{}, false, nil
}

type binder struct {
	cat Catalog
	opt Options
}

func (b *binder) bindNode(s *SExpr) (plan.Node, error) {
	if s.Kind != SList || len(s.List) == 0 {
		return nil, errAt(s.Line, s.Col, "expected operator list, got %s", s)
	}
	switch s.Head() {
	case "table":
		return b.bindTable(s)
	case "select":
		return b.bindSelect(s)
	case "project":
		return b.bindProject(s)
	case "aggregate":
		return b.bindAggregate(s)
	case "distinct":
		return b.bindDistinct(s)
	case "order":
		return b.bindOrder(s)
	case "topn":
		return b.bindTopN(s)
	case "limit":
		return b.bindLimit(s)
	case "join":
		return b.bindJoin(s)
	default:
		return nil, errAt(s.Line, s.Col, "unknown operator %q", s.Head())
	}
}

// nodeScope binds a child node and builds its resolution scope.
func (b *binder) nodeScope(s *SExpr) (plan.Node, *scope, error) {
	n, err := b.bindNode(s)
	if err != nil {
		return nil, nil, err
	}
	return n, scopeFor(n), nil
}

// scopeFor derives the resolution scope of a bound node, preserving table
// qualifiers through filters, joins and order-preserving operators.
func scopeFor(n plan.Node) *scope {
	switch x := n.(type) {
	case *plan.Scan:
		return scopeOf(x, x.Table.Name)
	case *plan.Filter:
		return scopeFor(x.Child)
	case *plan.Sort:
		return scopeFor(x.Child)
	case *plan.TopN:
		return scopeFor(x.Child)
	case *plan.Limit:
		return scopeFor(x.Child)
	case *plan.Join:
		l, r := scopeFor(x.Left), scopeFor(x.Right)
		rcols := append([]scopeCol{}, r.cols...)
		for ki := range x.LKeys {
			lc, rc := x.LKeys[ki], x.RKeys[ki]
			if strings.EqualFold(l.cols[lc].info.Name, rcols[rc].info.Name) {
				rcols[rc].shadow = true
			}
		}
		return &scope{cols: append(append([]scopeCol{}, l.cols...), rcols...)}
	default:
		return scopeOf(n, "")
	}
}

func (b *binder) bindTable(s *SExpr) (plan.Node, error) {
	if len(s.List) != 2 || s.List[1].Kind != SAtom {
		return nil, errAt(s.Line, s.Col, "usage: (table schema.name)")
	}
	full := s.List[1].Atom
	schema, name := b.opt.DefaultSchema, full
	if dot := strings.LastIndex(full, "."); dot > 0 {
		schema, name = full[:dot], full[dot+1:]
	}
	t, err := b.cat.Table(schema, name)
	if err != nil {
		return nil, errAt(s.Line, s.Col, "%v", err)
	}
	idxs := make([]int, len(t.Cols))
	for i := range idxs {
		idxs[i] = i
	}
	return &plan.Scan{Table: t, ColIdxs: idxs}, nil
}

func (b *binder) bindSelect(s *SExpr) (plan.Node, error) {
	if len(s.List) != 3 {
		return nil, errAt(s.Line, s.Col, "usage: (select <child> <predicate>)")
	}
	child, sc, err := b.nodeScope(s.List[1])
	if err != nil {
		return nil, err
	}
	pred, err := b.bindExpr(s.List[2], sc)
	if err != nil {
		return nil, err
	}
	if pred.Type() != storage.TBool && pred.Type() != storage.TNull {
		return nil, errAt(s.List[2].Line, s.List[2].Col, "predicate must be boolean, got %s", pred.Type())
	}
	return &plan.Filter{Child: child, Pred: pred}, nil
}

func (b *binder) bindProject(s *SExpr) (plan.Node, error) {
	if len(s.List) < 3 {
		return nil, errAt(s.Line, s.Col, "usage: (project <child> (name expr)...)")
	}
	child, sc, err := b.nodeScope(s.List[1])
	if err != nil {
		return nil, err
	}
	p := &plan.Project{Child: child}
	for _, item := range s.List[2:] {
		name, e, err := b.bindNamedExpr(item, sc)
		if err != nil {
			return nil, err
		}
		p.Names = append(p.Names, name)
		p.Exprs = append(p.Exprs, e)
	}
	return p, nil
}

// bindNamedExpr binds (name expr) or a bare column atom (named after itself).
func (b *binder) bindNamedExpr(item *SExpr, sc *scope) (string, plan.Expr, error) {
	if item.Kind == SAtom {
		e, err := b.bindExpr(item, sc)
		if err != nil {
			return "", nil, err
		}
		return item.Atom, e, nil
	}
	if item.Kind == SList && len(item.List) == 2 && item.List[0].Kind == SAtom {
		e, err := b.bindExpr(item.List[1], sc)
		if err != nil {
			return "", nil, err
		}
		return item.List[0].Atom, e, nil
	}
	return "", nil, errAt(item.Line, item.Col, "expected (name expr) or column, got %s", item)
}

func (b *binder) bindDistinct(s *SExpr) (plan.Node, error) {
	if len(s.List) != 2 {
		return nil, errAt(s.Line, s.Col, "usage: (distinct <child>)")
	}
	child, _, err := b.nodeScope(s.List[1])
	if err != nil {
		return nil, err
	}
	// DISTINCT is expressed as GROUP BY over every column (Sect. 4.1.2).
	g := make([]int, len(child.Schema()))
	for i := range g {
		g[i] = i
	}
	return &plan.Aggregate{Child: child, GroupBy: g}, nil
}

func (b *binder) bindAggregate(s *SExpr) (plan.Node, error) {
	if len(s.List) < 3 || len(s.List) > 4 {
		return nil, errAt(s.Line, s.Col, "usage: (aggregate <child> (groupby ...) (aggs ...))")
	}
	child, sc, err := b.nodeScope(s.List[1])
	if err != nil {
		return nil, err
	}
	var groupItems, aggItems []*SExpr
	for _, part := range s.List[2:] {
		switch part.Head() {
		case "groupby":
			groupItems = part.List[1:]
		case "aggs":
			aggItems = part.List[1:]
		default:
			return nil, errAt(part.Line, part.Col, "expected (groupby ...) or (aggs ...), got %s", part)
		}
	}

	type namedExpr struct {
		name string
		expr plan.Expr
	}
	var groups []namedExpr
	for _, g := range groupItems {
		name, e, err := b.bindNamedExpr(g, sc)
		if err != nil {
			return nil, err
		}
		groups = append(groups, namedExpr{name, e})
	}

	type aggItem struct {
		name string
		fn   plan.AggFn
		arg  plan.Expr // nil for count(*)
	}
	var aggs []aggItem
	for _, a := range aggItems {
		if a.Kind != SList || len(a.List) != 3 || a.List[0].Kind != SAtom || a.List[1].Kind != SAtom {
			return nil, errAt(a.Line, a.Col, "expected (name fn arg), got %s", a)
		}
		fn, err := plan.ParseAggFn(a.List[1].Atom)
		if err != nil {
			return nil, errAt(a.List[1].Line, a.List[1].Col, "%v", err)
		}
		item := aggItem{name: a.List[0].Atom, fn: fn}
		if !a.List[2].IsAtom("*") {
			e, err := b.bindExpr(a.List[2], sc)
			if err != nil {
				return nil, err
			}
			if (fn == plan.AggSum || fn == plan.AggAvg) && !e.Type().Numeric() {
				return nil, errAt(a.Line, a.Col, "%s requires a numeric argument, got %s", fn, e.Type())
			}
			item.arg = e
		} else if fn != plan.AggCount {
			return nil, errAt(a.Line, a.Col, "%s requires an argument", fn)
		}
		aggs = append(aggs, item)
	}

	// If every group key and aggregate argument is a plain column, aggregate
	// directly over the child; otherwise insert a projection computing them.
	simple := true
	for _, g := range groups {
		if c, ok := g.expr.(*plan.ColRef); !ok || !strings.EqualFold(c.Name, g.name) {
			simple = false
		}
	}
	for _, a := range aggs {
		if a.arg == nil {
			continue
		}
		if _, ok := a.arg.(*plan.ColRef); !ok {
			simple = false
		}
	}

	agg := &plan.Aggregate{}
	if simple {
		agg.Child = child
		for _, g := range groups {
			agg.GroupBy = append(agg.GroupBy, g.expr.(*plan.ColRef).Idx)
		}
		for _, a := range aggs {
			spec := plan.AggSpec{Fn: a.fn, ArgIdx: -1, Name: a.name}
			if a.arg != nil {
				spec.ArgIdx = a.arg.(*plan.ColRef).Idx
			}
			agg.Aggs = append(agg.Aggs, spec)
		}
	} else {
		proj := &plan.Project{Child: child}
		for _, g := range groups {
			proj.Names = append(proj.Names, g.name)
			proj.Exprs = append(proj.Exprs, g.expr)
		}
		argIdx := map[int]int{} // agg ordinal -> projected column
		for i, a := range aggs {
			if a.arg == nil {
				argIdx[i] = -1
				continue
			}
			proj.Names = append(proj.Names, fmt.Sprintf("$agg%d", i))
			proj.Exprs = append(proj.Exprs, a.arg)
			argIdx[i] = len(proj.Exprs) - 1
		}
		agg.Child = proj
		for i := range groups {
			agg.GroupBy = append(agg.GroupBy, i)
		}
		for i, a := range aggs {
			agg.Aggs = append(agg.Aggs, plan.AggSpec{Fn: a.fn, ArgIdx: argIdx[i], Name: a.name})
		}
	}
	return agg, nil
}

func (b *binder) bindSortKeys(items []*SExpr, sc *scope) ([]plan.SortKey, error) {
	var keys []plan.SortKey
	for _, item := range items {
		desc := false
		var colExpr *SExpr
		switch {
		case item.Kind == SList && len(item.List) == 2 && (item.List[0].IsAtom("asc") || item.List[0].IsAtom("desc")):
			desc = item.List[0].IsAtom("desc")
			colExpr = item.List[1]
		case item.Kind == SAtom:
			colExpr = item
		default:
			return nil, errAt(item.Line, item.Col, "expected (asc col), (desc col) or column, got %s", item)
		}
		e, err := b.bindExpr(colExpr, sc)
		if err != nil {
			return nil, err
		}
		c, ok := e.(*plan.ColRef)
		if !ok {
			return nil, errAt(colExpr.Line, colExpr.Col, "sort keys must be columns")
		}
		keys = append(keys, plan.SortKey{Col: c.Idx, Desc: desc})
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("tql: at least one sort key required")
	}
	return keys, nil
}

func (b *binder) bindOrder(s *SExpr) (plan.Node, error) {
	if len(s.List) < 3 {
		return nil, errAt(s.Line, s.Col, "usage: (order <child> (asc col)...)")
	}
	child, sc, err := b.nodeScope(s.List[1])
	if err != nil {
		return nil, err
	}
	keys, err := b.bindSortKeys(s.List[2:], sc)
	if err != nil {
		return nil, err
	}
	return &plan.Sort{Child: child, Keys: keys}, nil
}

func (b *binder) bindTopN(s *SExpr) (plan.Node, error) {
	if len(s.List) < 4 || s.List[2].Kind != SNum {
		return nil, errAt(s.Line, s.Col, "usage: (topn <child> N (desc col)...)")
	}
	child, sc, err := b.nodeScope(s.List[1])
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(s.List[2].Num)
	if err != nil || n < 0 {
		return nil, errAt(s.List[2].Line, s.List[2].Col, "bad top-n count %q", s.List[2].Num)
	}
	keys, err := b.bindSortKeys(s.List[3:], sc)
	if err != nil {
		return nil, err
	}
	return &plan.TopN{Child: child, N: n, Keys: keys}, nil
}

func (b *binder) bindLimit(s *SExpr) (plan.Node, error) {
	if len(s.List) != 3 || s.List[2].Kind != SNum {
		return nil, errAt(s.Line, s.Col, "usage: (limit <child> N)")
	}
	child, _, err := b.nodeScope(s.List[1])
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(s.List[2].Num)
	if err != nil || n < 0 {
		return nil, errAt(s.List[2].Line, s.List[2].Col, "bad limit %q", s.List[2].Num)
	}
	return &plan.Limit{Child: child, N: n}, nil
}

func (b *binder) bindJoin(s *SExpr) (plan.Node, error) {
	if len(s.List) < 4 {
		return nil, errAt(s.Line, s.Col, "usage: (join <left> <right> (on (= l r)...) [left])")
	}
	left, lsc, err := b.nodeScope(s.List[1])
	if err != nil {
		return nil, err
	}
	right, rsc, err := b.nodeScope(s.List[2])
	if err != nil {
		return nil, err
	}
	on := s.List[3]
	if on.Head() != "on" {
		return nil, errAt(on.Line, on.Col, "expected (on ...), got %s", on)
	}
	j := &plan.Join{Left: left, Right: right}
	for _, cond := range on.List[1:] {
		if cond.Kind != SList || len(cond.List) != 3 || !cond.List[0].IsAtom("=") {
			return nil, errAt(cond.Line, cond.Col, "join conditions must be (= lcol rcol)")
		}
		lIdx, lInfo, lok, err := b.resolveCol(cond.List[1], lsc)
		if err != nil {
			return nil, err
		}
		rIdx, rInfo, rok, err := b.resolveCol(cond.List[2], rsc)
		if err != nil {
			return nil, err
		}
		if !lok || !rok {
			// Allow the condition written right-to-left.
			lIdx, lInfo, lok, err = b.resolveCol(cond.List[2], lsc)
			if err != nil {
				return nil, err
			}
			rIdx, rInfo, rok, err = b.resolveCol(cond.List[1], rsc)
			if err != nil {
				return nil, err
			}
			if !lok || !rok {
				return nil, errAt(cond.Line, cond.Col, "cannot resolve join condition %s", cond)
			}
		}
		if _, err := storage.Promote(lInfo.Type, rInfo.Type); err != nil {
			return nil, errAt(cond.Line, cond.Col, "join key type mismatch: %s vs %s", lInfo.Type, rInfo.Type)
		}
		j.LKeys = append(j.LKeys, lIdx)
		j.RKeys = append(j.RKeys, rIdx)
	}
	if len(j.LKeys) == 0 {
		return nil, errAt(on.Line, on.Col, "join requires at least one condition")
	}
	if len(s.List) > 4 {
		if !s.List[4].IsAtom("left") && !s.List[4].IsAtom("inner") {
			return nil, errAt(s.List[4].Line, s.List[4].Col, "join kind must be inner or left")
		}
		if s.List[4].IsAtom("left") {
			j.Kind = plan.JoinLeft
		}
	}
	return j, nil
}

func (b *binder) resolveCol(s *SExpr, sc *scope) (int, plan.ColInfo, bool, error) {
	if s.Kind != SAtom {
		return 0, plan.ColInfo{}, false, nil
	}
	idx, info, ok, err := sc.resolve(s.Atom)
	if err != nil {
		return 0, plan.ColInfo{}, false, errAt(s.Line, s.Col, "%v", err)
	}
	return idx, info, ok, nil
}

// ---- expressions ----

func (b *binder) bindExpr(s *SExpr, sc *scope) (plan.Expr, error) {
	switch s.Kind {
	case SNum:
		if strings.ContainsAny(s.Num, ".eE") {
			f, err := strconv.ParseFloat(s.Num, 64)
			if err != nil {
				return nil, errAt(s.Line, s.Col, "bad number %q", s.Num)
			}
			return &plan.Lit{Val: storage.FloatValue(f)}, nil
		}
		i, err := strconv.ParseInt(s.Num, 10, 64)
		if err != nil {
			return nil, errAt(s.Line, s.Col, "bad number %q", s.Num)
		}
		return &plan.Lit{Val: storage.IntValue(i)}, nil
	case SStr:
		return &plan.Lit{Val: storage.StrValue(s.Str)}, nil
	case SAtom:
		switch strings.ToLower(s.Atom) {
		case "true":
			return &plan.Lit{Val: storage.BoolValue(true)}, nil
		case "false":
			return &plan.Lit{Val: storage.BoolValue(false)}, nil
		case "null":
			return &plan.Lit{Val: storage.NullValue(storage.TNull)}, nil
		}
		idx, info, ok, err := sc.resolve(s.Atom)
		if err != nil {
			return nil, errAt(s.Line, s.Col, "%v", err)
		}
		if !ok {
			return nil, errAt(s.Line, s.Col, "unknown column %q", s.Atom)
		}
		return &plan.ColRef{Name: info.Name, Idx: idx, Typ: info.Type, Coll: info.Coll}, nil
	case SList:
		return b.bindCallForm(s, sc)
	default:
		return nil, errAt(s.Line, s.Col, "unexpected expression %s", s)
	}
}

func (b *binder) bindCallForm(s *SExpr, sc *scope) (plan.Expr, error) {
	if len(s.List) == 0 || s.List[0].Kind != SAtom {
		return nil, errAt(s.Line, s.Col, "expected (op args...), got %s", s)
	}
	op := strings.ToLower(s.List[0].Atom)
	args := s.List[1:]
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
		return b.bindCmp(s, op, args, sc)
	case "and", "or":
		if len(args) < 2 {
			return nil, errAt(s.Line, s.Col, "%s needs at least two arguments", op)
		}
		logic := &plan.Logic{Op: plan.LogicAnd}
		if op == "or" {
			logic.Op = plan.LogicOr
		}
		for _, a := range args {
			e, err := b.bindExpr(a, sc)
			if err != nil {
				return nil, err
			}
			if e.Type() != storage.TBool && e.Type() != storage.TNull {
				return nil, errAt(a.Line, a.Col, "%s operand must be boolean, got %s", op, e.Type())
			}
			logic.Args = append(logic.Args, e)
		}
		return logic, nil
	case "not":
		if len(args) != 1 {
			return nil, errAt(s.Line, s.Col, "not takes one argument")
		}
		e, err := b.bindExpr(args[0], sc)
		if err != nil {
			return nil, err
		}
		if e.Type() != storage.TBool && e.Type() != storage.TNull {
			return nil, errAt(args[0].Line, args[0].Col, "not operand must be boolean, got %s", e.Type())
		}
		return &plan.Logic{Op: plan.LogicNot, Args: []plan.Expr{e}}, nil
	case "+", "-", "*", "/", "%":
		return b.bindArith(s, op, args, sc)
	case "in", "not-in":
		return b.bindIn(s, op == "not-in", args, sc)
	case "isnull", "isnotnull":
		if len(args) != 1 {
			return nil, errAt(s.Line, s.Col, "%s takes one argument", op)
		}
		e, err := b.bindExpr(args[0], sc)
		if err != nil {
			return nil, err
		}
		return &plan.IsNull{E: e, Negate: op == "isnotnull"}, nil
	case "if":
		if len(args) != 3 {
			return nil, errAt(s.Line, s.Col, "if takes (if cond then else)")
		}
		cond, err := b.bindExpr(args[0], sc)
		if err != nil {
			return nil, err
		}
		thenE, err := b.bindExpr(args[1], sc)
		if err != nil {
			return nil, err
		}
		elseE, err := b.bindExpr(args[2], sc)
		if err != nil {
			return nil, err
		}
		t, err := storage.Promote(thenE.Type(), elseE.Type())
		if err != nil {
			return nil, errAt(s.Line, s.Col, "if branches: %v", err)
		}
		return &plan.If{Cond: cond, Then: thenE, Else: elseE, Typ: t}, nil
	case "date", "datetime":
		if len(args) != 1 || args[0].Kind != SStr {
			return nil, errAt(s.Line, s.Col, "usage: (%s \"2015-05-31\")", op)
		}
		return bindTemporalLit(op, args[0])
	default:
		fn, ok := plan.LookupFunc(op)
		if !ok {
			return nil, errAt(s.Line, s.Col, "unknown function %q", op)
		}
		if len(args) < fn.MinArgs || len(args) > fn.MaxArgs {
			return nil, errAt(s.Line, s.Col, "%s takes %d..%d arguments, got %d", fn.Name, fn.MinArgs, fn.MaxArgs, len(args))
		}
		call := &plan.Call{Fn: fn}
		for _, a := range args {
			e, err := b.bindExpr(a, sc)
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, e)
		}
		if fn.Check != nil {
			if err := fn.Check(call.Args); err != nil {
				return nil, errAt(s.Line, s.Col, "%v", err)
			}
		}
		return call, nil
	}
}

func bindTemporalLit(op string, arg *SExpr) (plan.Expr, error) {
	if op == "date" {
		t, err := time.Parse("2006-01-02", arg.Str)
		if err != nil {
			return nil, errAt(arg.Line, arg.Col, "bad date %q", arg.Str)
		}
		return &plan.Lit{Val: storage.Value{Type: storage.TDate, I: t.Unix() / 86400}}, nil
	}
	t, err := time.Parse("2006-01-02 15:04:05", arg.Str)
	if err != nil {
		return nil, errAt(arg.Line, arg.Col, "bad datetime %q", arg.Str)
	}
	return &plan.Lit{Val: storage.DateTimeValue(t)}, nil
}

func cmpOpFor(op string) plan.CmpOp {
	switch op {
	case "=":
		return plan.CmpEq
	case "!=":
		return plan.CmpNe
	case "<":
		return plan.CmpLt
	case "<=":
		return plan.CmpLe
	case ">":
		return plan.CmpGt
	default:
		return plan.CmpGe
	}
}

func exprColl(e plan.Expr) storage.Collation {
	coll := storage.CollBinary
	plan.Walk(e, func(x plan.Expr) bool {
		if c, ok := x.(*plan.ColRef); ok && c.Typ == storage.TStr {
			coll = c.Coll
			return false
		}
		return true
	})
	return coll
}

func (b *binder) bindCmp(s *SExpr, op string, args []*SExpr, sc *scope) (plan.Expr, error) {
	if len(args) != 2 {
		return nil, errAt(s.Line, s.Col, "%s takes two arguments", op)
	}
	l, err := b.bindExpr(args[0], sc)
	if err != nil {
		return nil, err
	}
	r, err := b.bindExpr(args[1], sc)
	if err != nil {
		return nil, err
	}
	if _, err := storage.Promote(l.Type(), r.Type()); err != nil {
		return nil, errAt(s.Line, s.Col, "cannot compare %s with %s", l.Type(), r.Type())
	}
	coll := exprColl(l)
	if coll == storage.CollBinary {
		coll = exprColl(r)
	}
	return &plan.Cmp{Op: cmpOpFor(op), L: l, R: r, Coll: coll}, nil
}

func (b *binder) bindArith(s *SExpr, op string, args []*SExpr, sc *scope) (plan.Expr, error) {
	if len(args) != 2 {
		return nil, errAt(s.Line, s.Col, "%s takes two arguments", op)
	}
	l, err := b.bindExpr(args[0], sc)
	if err != nil {
		return nil, err
	}
	r, err := b.bindExpr(args[1], sc)
	if err != nil {
		return nil, err
	}
	if !l.Type().Numeric() && l.Type() != storage.TNull {
		return nil, errAt(args[0].Line, args[0].Col, "%s operand must be numeric, got %s", op, l.Type())
	}
	if !r.Type().Numeric() && r.Type() != storage.TNull {
		return nil, errAt(args[1].Line, args[1].Col, "%s operand must be numeric, got %s", op, r.Type())
	}
	t, err := storage.Promote(l.Type(), r.Type())
	if err != nil {
		return nil, errAt(s.Line, s.Col, "%v", err)
	}
	if op == "/" {
		t = storage.TFloat
	}
	var aop plan.ArithOp
	switch op {
	case "+":
		aop = plan.ArithAdd
	case "-":
		aop = plan.ArithSub
	case "*":
		aop = plan.ArithMul
	case "/":
		aop = plan.ArithDiv
	case "%":
		aop = plan.ArithMod
	}
	return &plan.Arith{Op: aop, L: l, R: r, Typ: t}, nil
}

func (b *binder) bindIn(s *SExpr, negate bool, args []*SExpr, sc *scope) (plan.Expr, error) {
	if len(args) != 2 || args[1].Kind != SBracket {
		return nil, errAt(s.Line, s.Col, "usage: (in <expr> [v1 v2 ...])")
	}
	e, err := b.bindExpr(args[0], sc)
	if err != nil {
		return nil, err
	}
	in := &plan.InList{E: e, Negate: negate, Coll: exprColl(e)}
	for _, item := range args[1].List {
		lit, err := b.bindExpr(item, sc)
		if err != nil {
			return nil, err
		}
		l, ok := lit.(*plan.Lit)
		if !ok {
			return nil, errAt(item.Line, item.Col, "in-list items must be literals")
		}
		if _, err := storage.Promote(e.Type(), l.Val.Type); err != nil {
			return nil, errAt(item.Line, item.Col, "in-list item type %s does not match %s", l.Val.Type, e.Type())
		}
		in.Vals = append(in.Vals, l.Val)
	}
	return in, nil
}
