package tql

import (
	"strings"
	"testing"

	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// ---- lexer / parser ----

func TestParseBasics(t *testing.T) {
	s, err := Parse(`(select (table flights) (> delay 10))`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Head() != "select" || len(s.List) != 3 {
		t.Fatalf("parsed %s", s)
	}
	if got := s.String(); got != `(select (table flights) (> delay 10))` {
		t.Errorf("round trip = %s", got)
	}
}

func TestParseLiteralsAndComments(t *testing.T) {
	s, err := Parse("(in x [1 -2 3.5 \"a b\" `weird col`]) ; trailing comment")
	if err != nil {
		t.Fatal(err)
	}
	items := s.List[2].List
	if len(items) != 5 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].Kind != SNum || items[1].Num != "-2" || items[2].Num != "3.5" {
		t.Errorf("numbers wrong: %v", items)
	}
	if items[3].Kind != SStr || items[3].Str != "a b" {
		t.Errorf("string wrong: %v", items[3])
	}
	if items[4].Kind != SAtom || items[4].Atom != "weird col" {
		t.Errorf("quoted ident wrong: %v", items[4])
	}
}

func TestParseStringEscapes(t *testing.T) {
	s, err := Parse(`(x "line\nbreak \"quoted\" back\\slash")`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.List[1].Str; got != "line\nbreak \"quoted\" back\\slash" {
		t.Errorf("escapes = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``, `(`, `)`, `(a))`, `(a "unterminated`, `(a "bad\q")`,
		"(a `unterminated", `(a [1 2)`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("(select\n  (table flights)\n  @)")
	if err == nil {
		t.Fatal("expected error")
	}
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Line != 3 {
		t.Errorf("line = %d, want 3", e.Line)
	}
}

// ---- binder ----

type fakeCatalog struct{ tables map[string]*storage.Table }

func (c *fakeCatalog) Table(schema, name string) (*storage.Table, error) {
	if t, ok := c.tables[strings.ToLower(schema+"."+name)]; ok {
		return t, nil
	}
	return nil, &Error{Msg: "no table " + schema + "." + name}
}

func testCatalog(t *testing.T) *fakeCatalog {
	t.Helper()
	mk := func(name string, typ storage.Type, vals ...storage.Value) *storage.Column {
		c, err := storage.BuildColumn(name, typ, storage.CollBinary, vals, storage.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	iv, sv, fv := storage.IntValue, storage.StrValue, storage.FloatValue
	tbl, err := storage.NewTable("Extract", "t", []*storage.Column{
		mk("a", storage.TInt, iv(1), iv(2), iv(3)),
		mk("b", storage.TStr, sv("x"), sv("y"), sv("z")),
		mk("c", storage.TFloat, fv(1.5), fv(2.5), fv(3.5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	dim, err := storage.NewTable("Extract", "d", []*storage.Column{
		mk("b", storage.TStr, sv("x"), sv("y")),
		mk("label", storage.TStr, sv("ex"), sv("why")),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fakeCatalog{tables: map[string]*storage.Table{
		"extract.t": tbl,
		"extract.d": dim,
	}}
}

func TestBindTypePromotion(t *testing.T) {
	cat := testCatalog(t)
	n, err := Compile(`(project (table t) (sum (+ a c)) (half (/ a 2)))`, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sch := n.Schema()
	if sch[0].Type != storage.TFloat {
		t.Errorf("int+float should promote to float, got %v", sch[0].Type)
	}
	if sch[1].Type != storage.TFloat {
		t.Errorf("division is float, got %v", sch[1].Type)
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	for _, src := range []string{
		`(table nope)`,
		`(select (table t) a)`,                        // int predicate
		`(select (table t) (= a "s"))`,                // cmp type mismatch
		`(select (table t) (and (> a 1) 5))`,          // non-bool and operand
		`(project (table t) (x (+ b 1)))`,             // arith on string
		`(project (table t) (x (unknownfn a)))`,       // unknown function
		`(project (table t) (x (upper a)))`,           // wrong arg type
		`(project (table t) (x (substr b 1)))`,        // wrong arity
		`(aggregate (table t) (groupby zzz))`,         // unknown column
		`(aggregate (table t) (aggs (s sum b)))`,      // sum of string
		`(order (table t))`,                           // no keys
		`(topn (table t) 2 ((+ a 1)))`,                // non-column sort key
		`(join (table t) (table d) (on (= a label)))`, // type mismatch keys? int vs str
		`(in a [1 "x"])`,                              // mixed in-list (also not a node)
		`(limit (table t) x)`,                         // bad limit
		`(date "99-99")`,                              // bad date (as top-level)
	} {
		if _, err := Compile(src, cat, Options{}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestBindIfExpression(t *testing.T) {
	cat := testCatalog(t)
	n, err := Compile(`(project (table t) (band (if (> a 1) "hi" "lo")))`, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Schema()[0].Type != storage.TStr {
		t.Errorf("if type = %v", n.Schema()[0].Type)
	}
}

func TestBindAggregateInsertsProjection(t *testing.T) {
	cat := testCatalog(t)
	n, err := Compile(`
		(aggregate (table t)
			(groupby (dbl (* a 2)))
			(aggs (s sum (+ c 1.0)) (n count *)))`, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := plan.Format(n)
	if !strings.Contains(got, "project") {
		t.Errorf("computed group keys need a projection:\n%s", got)
	}
	agg, ok := n.(*plan.Aggregate)
	if !ok {
		t.Fatalf("root is %T", n)
	}
	if agg.Aggs[1].ArgIdx != -1 {
		t.Errorf("count(*) arg = %d", agg.Aggs[1].ArgIdx)
	}
	sch := n.Schema()
	if sch[0].Name != "dbl" || sch[1].Name != "s" || sch[2].Name != "n" {
		t.Errorf("schema = %v", sch)
	}
}

func TestBindJoinReversedCondition(t *testing.T) {
	cat := testCatalog(t)
	// Condition written right-to-left still binds.
	n, err := Compile(`(join (table t) (table d) (on (= d.b t.b)))`, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := n.(*plan.Join)
	if len(j.LKeys) != 1 || j.LKeys[0] != 1 || j.RKeys[0] != 0 {
		t.Errorf("keys = %v %v", j.LKeys, j.RKeys)
	}
}

func TestBindShadowedJoinKey(t *testing.T) {
	cat := testCatalog(t)
	// "b" appears on both sides; after the equi-join they are
	// interchangeable, so the unqualified reference resolves.
	_, err := Compile(`
		(select (join (table t) (table d) (on (= t.b d.b))) (= b "x"))`, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// But a genuinely ambiguous non-key duplicate still errors.
	_, err = Compile(`
		(project (join (table t) (table d) (on (= t.a t.a))) (x b))`, cat, Options{})
	if err == nil {
		t.Skip("self-join alias case not expressible with this catalog")
	}
}

func TestDefaultSchemaOption(t *testing.T) {
	cat := testCatalog(t)
	if _, err := Compile(`(table Extract.t)`, cat, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(`(table t)`, cat, Options{DefaultSchema: "Extract"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(`(table t)`, cat, Options{DefaultSchema: "Missing"}); err == nil {
		t.Error("wrong default schema should fail")
	}
}
