// Package plan defines the TDE's logical query representation: typed
// expressions, aggregate specifications and the logical operator tree that
// the TQL compiler produces, the optimizer rewrites and the execution engine
// interprets (Sect. 4.1.2 of the paper).
package plan

import (
	"fmt"
	"strings"

	"vizq/internal/tde/storage"
)

// Expr is a typed scalar expression over the rows of one operator's output.
type Expr interface {
	// Type returns the result type.
	Type() storage.Type
	// String renders a canonical TQL-ish form used for plan printing and
	// cache keys.
	String() string
}

// ColRef references a column of the child operator's schema by ordinal.
type ColRef struct {
	Name string
	Idx  int
	Typ  storage.Type
	Coll storage.Collation
}

// Type implements Expr.
func (c *ColRef) Type() storage.Type { return c.Typ }

// String implements Expr.
func (c *ColRef) String() string { return c.Name }

// Lit is a literal value.
type Lit struct {
	Val storage.Value
}

// Type implements Expr.
func (l *Lit) Type() storage.Type { return l.Val.Type }

// String implements Expr.
func (l *Lit) String() string {
	if l.Val.Type == storage.TStr && !l.Val.Null {
		return fmt.Sprintf("%q", l.Val.S)
	}
	return l.Val.String()
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the TQL spelling.
func (o CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// Negate returns the complement operator (< becomes >=, etc.).
func (o CmpOp) Negate() CmpOp {
	switch o {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	default:
		return CmpLt
	}
}

// Cmp compares two expressions. String comparisons use Coll.
type Cmp struct {
	Op   CmpOp
	L, R Expr
	Coll storage.Collation
}

// Type implements Expr.
func (c *Cmp) Type() storage.Type { return storage.TBool }

// String implements Expr.
func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.Op, c.L, c.R)
}

// LogicOp is a boolean connective.
type LogicOp uint8

// Boolean connectives.
const (
	LogicAnd LogicOp = iota
	LogicOr
	LogicNot
)

// String returns the TQL spelling.
func (o LogicOp) String() string { return [...]string{"and", "or", "not"}[o] }

// Logic combines boolean expressions.
type Logic struct {
	Op   LogicOp
	Args []Expr
}

// Type implements Expr.
func (l *Logic) Type() storage.Type { return storage.TBool }

// String implements Expr.
func (l *Logic) String() string {
	parts := make([]string, len(l.Args))
	for i, a := range l.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("(%s %s)", l.Op, strings.Join(parts, " "))
}

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	ArithAdd ArithOp = iota
	ArithSub
	ArithMul
	ArithDiv
	ArithMod
)

// String returns the TQL spelling.
func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[o] }

// Arith applies integer or float arithmetic with promotion.
type Arith struct {
	Op   ArithOp
	L, R Expr
	Typ  storage.Type
}

// Type implements Expr.
func (a *Arith) Type() storage.Type { return a.Typ }

// String implements Expr.
func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.Op, a.L, a.R)
}

// InList tests membership of E in a literal value set; large enumerations of
// this form are what Tableau externalizes into temporary tables.
type InList struct {
	E      Expr
	Vals   []storage.Value
	Negate bool
	Coll   storage.Collation
}

// Type implements Expr.
func (e *InList) Type() storage.Type { return storage.TBool }

// String implements Expr.
func (e *InList) String() string {
	parts := make([]string, len(e.Vals))
	for i, v := range e.Vals {
		parts[i] = (&Lit{Val: v}).String()
	}
	op := "in"
	if e.Negate {
		op = "not-in"
	}
	return fmt.Sprintf("(%s %s [%s])", op, e.E, strings.Join(parts, " "))
}

// IsNull tests nullness.
type IsNull struct {
	E      Expr
	Negate bool
}

// Type implements Expr.
func (e *IsNull) Type() storage.Type { return storage.TBool }

// String implements Expr.
func (e *IsNull) String() string {
	if e.Negate {
		return fmt.Sprintf("(isnotnull %s)", e.E)
	}
	return fmt.Sprintf("(isnull %s)", e.E)
}

// If is the conditional expression if(cond, then, else).
type If struct {
	Cond, Then, Else Expr
	Typ              storage.Type
}

// Type implements Expr.
func (e *If) Type() storage.Type { return e.Typ }

// String implements Expr.
func (e *If) String() string {
	return fmt.Sprintf("(if %s %s %s)", e.Cond, e.Then, e.Else)
}

// Call invokes a built-in scalar function.
type Call struct {
	Fn   *FuncDef
	Args []Expr
}

// Type implements Expr.
func (c *Call) Type() storage.Type { return c.Fn.RetType(c.Args) }

// String implements Expr.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("(%s %s)", c.Fn.Name, strings.Join(parts, " "))
}

// Children returns the direct sub-expressions of e.
func Children(e Expr) []Expr {
	switch x := e.(type) {
	case *Cmp:
		return []Expr{x.L, x.R}
	case *Logic:
		return x.Args
	case *Arith:
		return []Expr{x.L, x.R}
	case *InList:
		return []Expr{x.E}
	case *IsNull:
		return []Expr{x.E}
	case *If:
		return []Expr{x.Cond, x.Then, x.Else}
	case *Call:
		return x.Args
	}
	return nil
}

// Rewrite applies f bottom-up over the expression tree, returning the
// rewritten expression. f receives each node after its children have been
// rewritten.
func Rewrite(e Expr, f func(Expr) Expr) Expr {
	switch x := e.(type) {
	case *Cmp:
		c := *x
		c.L, c.R = Rewrite(x.L, f), Rewrite(x.R, f)
		return f(&c)
	case *Logic:
		c := *x
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = Rewrite(a, f)
		}
		return f(&c)
	case *Arith:
		c := *x
		c.L, c.R = Rewrite(x.L, f), Rewrite(x.R, f)
		return f(&c)
	case *InList:
		c := *x
		c.E = Rewrite(x.E, f)
		return f(&c)
	case *IsNull:
		c := *x
		c.E = Rewrite(x.E, f)
		return f(&c)
	case *If:
		c := *x
		c.Cond, c.Then, c.Else = Rewrite(x.Cond, f), Rewrite(x.Then, f), Rewrite(x.Else, f)
		return f(&c)
	case *Call:
		c := *x
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = Rewrite(a, f)
		}
		return f(&c)
	}
	return f(e)
}

// Walk visits every node of the expression tree pre-order; it stops
// descending when f returns false.
func Walk(e Expr, f func(Expr) bool) {
	if !f(e) {
		return
	}
	for _, c := range Children(e) {
		Walk(c, f)
	}
}

// ReferencedCols collects the distinct column ordinals referenced by e.
func ReferencedCols(e Expr) []int {
	seen := map[int]bool{}
	var out []int
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*ColRef); ok && !seen[c.Idx] {
			seen[c.Idx] = true
			out = append(out, c.Idx)
		}
		return true
	})
	return out
}

// RemapCols rewrites every ColRef ordinal through mapping (old -> new).
// Ordinals missing from the mapping are left untouched.
func RemapCols(e Expr, mapping map[int]int) Expr {
	return Rewrite(e, func(x Expr) Expr {
		if c, ok := x.(*ColRef); ok {
			if n, ok := mapping[c.Idx]; ok {
				cc := *c
				cc.Idx = n
				return &cc
			}
		}
		return x
	})
}

// AndSplit flattens a conjunction into its conjuncts.
func AndSplit(e Expr) []Expr {
	if l, ok := e.(*Logic); ok && l.Op == LogicAnd {
		var out []Expr
		for _, a := range l.Args {
			out = append(out, AndSplit(a)...)
		}
		return out
	}
	return []Expr{e}
}

// AndJoin combines conjuncts back into a single predicate; nil for empty.
func AndJoin(conjuncts []Expr) Expr {
	switch len(conjuncts) {
	case 0:
		return nil
	case 1:
		return conjuncts[0]
	}
	return &Logic{Op: LogicAnd, Args: conjuncts}
}
