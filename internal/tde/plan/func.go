package plan

import (
	"fmt"
	"math"
	"strings"
	"time"

	"vizq/internal/tde/storage"
)

// FuncDef describes a built-in scalar function: signature checking, result
// typing, a scalar evaluator, and an empirically-set cost constant. The cost
// profile is what the parallelizer consults to decide how expensive an
// expression is (Sect. 4.2.2: "cost constants are obtained by empirical
// measuring; certain operations, such as string manipulations, are much more
// expensive than others").
type FuncDef struct {
	Name    string
	MinArgs int
	MaxArgs int
	// Cost is the per-row evaluation cost relative to an integer addition.
	Cost float64
	// RetType derives the result type from the bound argument expressions.
	RetType func(args []Expr) storage.Type
	// Check validates argument types at bind time.
	Check func(args []Expr) error
	// Eval computes the function for one row; any null argument yields null
	// unless the function overrides NullSafe.
	Eval func(args []storage.Value) storage.Value
	// NullSafe marks functions that handle null inputs themselves.
	NullSafe bool
}

func fixed(t storage.Type) func([]Expr) storage.Type {
	return func([]Expr) storage.Type { return t }
}

func wantType(name string, pos int, ok func(storage.Type) bool, desc string) func([]Expr) error {
	return func(args []Expr) error {
		if pos < len(args) && !ok(args[pos].Type()) && args[pos].Type() != storage.TNull {
			return fmt.Errorf("plan: %s: argument %d must be %s, got %s", name, pos+1, desc, args[pos].Type())
		}
		return nil
	}
}

func isStr(t storage.Type) bool  { return t == storage.TStr }
func isNum(t storage.Type) bool  { return t.Numeric() }
func isTemp(t storage.Type) bool { return t == storage.TDate || t == storage.TDateTime }
func allChecks(fs ...func([]Expr) error) func([]Expr) error {
	return func(args []Expr) error {
		for _, f := range fs {
			if err := f(args); err != nil {
				return err
			}
		}
		return nil
	}
}

var funcRegistry = map[string]*FuncDef{}

func register(f *FuncDef) { funcRegistry[f.Name] = f }

// LookupFunc resolves a built-in function by name (case-insensitive).
func LookupFunc(name string) (*FuncDef, bool) {
	f, ok := funcRegistry[strings.ToLower(name)]
	return f, ok
}

// FuncNames returns the registered function names (for diagnostics).
func FuncNames() []string {
	out := make([]string, 0, len(funcRegistry))
	for n := range funcRegistry {
		out = append(out, n)
	}
	return out
}

func numFloat(v storage.Value) float64 { return v.AsFloat() }

func dateParts(v storage.Value) time.Time {
	if v.Type == storage.TDate {
		return time.Unix(v.I*86400, 0).UTC()
	}
	return time.Unix(v.I, 0).UTC()
}

func init() {
	register(&FuncDef{
		Name: "abs", MinArgs: 1, MaxArgs: 1, Cost: 1,
		RetType: func(args []Expr) storage.Type { return args[0].Type() },
		Check:   wantType("abs", 0, isNum, "numeric"),
		Eval: func(a []storage.Value) storage.Value {
			if a[0].Type == storage.TFloat {
				return storage.FloatValue(math.Abs(a[0].F))
			}
			if a[0].I < 0 {
				return storage.IntValue(-a[0].I)
			}
			return a[0]
		},
	})
	register(&FuncDef{
		Name: "round", MinArgs: 1, MaxArgs: 1, Cost: 2,
		RetType: fixed(storage.TFloat),
		Check:   wantType("round", 0, isNum, "numeric"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.FloatValue(math.Round(numFloat(a[0])))
		},
	})
	register(&FuncDef{
		Name: "floor", MinArgs: 1, MaxArgs: 1, Cost: 2,
		RetType: fixed(storage.TFloat),
		Check:   wantType("floor", 0, isNum, "numeric"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.FloatValue(math.Floor(numFloat(a[0])))
		},
	})
	register(&FuncDef{
		Name: "ceil", MinArgs: 1, MaxArgs: 1, Cost: 2,
		RetType: fixed(storage.TFloat),
		Check:   wantType("ceil", 0, isNum, "numeric"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.FloatValue(math.Ceil(numFloat(a[0])))
		},
	})
	register(&FuncDef{
		Name: "sqrt", MinArgs: 1, MaxArgs: 1, Cost: 4,
		RetType: fixed(storage.TFloat),
		Check:   wantType("sqrt", 0, isNum, "numeric"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.FloatValue(math.Sqrt(numFloat(a[0])))
		},
	})
	register(&FuncDef{
		Name: "upper", MinArgs: 1, MaxArgs: 1, Cost: 20,
		RetType: fixed(storage.TStr),
		Check:   wantType("upper", 0, isStr, "string"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.StrValue(strings.ToUpper(a[0].S))
		},
	})
	register(&FuncDef{
		Name: "lower", MinArgs: 1, MaxArgs: 1, Cost: 20,
		RetType: fixed(storage.TStr),
		Check:   wantType("lower", 0, isStr, "string"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.StrValue(strings.ToLower(a[0].S))
		},
	})
	register(&FuncDef{
		Name: "trim", MinArgs: 1, MaxArgs: 1, Cost: 15,
		RetType: fixed(storage.TStr),
		Check:   wantType("trim", 0, isStr, "string"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.StrValue(strings.TrimSpace(a[0].S))
		},
	})
	register(&FuncDef{
		Name: "len", MinArgs: 1, MaxArgs: 1, Cost: 10,
		RetType: fixed(storage.TInt),
		Check:   wantType("len", 0, isStr, "string"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.IntValue(int64(len(a[0].S)))
		},
	})
	register(&FuncDef{
		Name: "substr", MinArgs: 3, MaxArgs: 3, Cost: 25,
		RetType: fixed(storage.TStr),
		Check: allChecks(
			wantType("substr", 0, isStr, "string"),
			wantType("substr", 1, isNum, "numeric"),
			wantType("substr", 2, isNum, "numeric"),
		),
		Eval: func(a []storage.Value) storage.Value {
			s := a[0].S
			start := int(a[1].I)
			n := int(a[2].I)
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				start = len(s)
			}
			end := start + n
			if end > len(s) || n < 0 {
				end = len(s)
			}
			return storage.StrValue(s[start:end])
		},
	})
	register(&FuncDef{
		Name: "contains", MinArgs: 2, MaxArgs: 2, Cost: 30,
		RetType: fixed(storage.TBool),
		Check: allChecks(
			wantType("contains", 0, isStr, "string"),
			wantType("contains", 1, isStr, "string"),
		),
		Eval: func(a []storage.Value) storage.Value {
			return storage.BoolValue(strings.Contains(a[0].S, a[1].S))
		},
	})
	register(&FuncDef{
		Name: "startswith", MinArgs: 2, MaxArgs: 2, Cost: 25,
		RetType: fixed(storage.TBool),
		Check: allChecks(
			wantType("startswith", 0, isStr, "string"),
			wantType("startswith", 1, isStr, "string"),
		),
		Eval: func(a []storage.Value) storage.Value {
			return storage.BoolValue(strings.HasPrefix(a[0].S, a[1].S))
		},
	})
	register(&FuncDef{
		Name: "concat", MinArgs: 2, MaxArgs: 8, Cost: 30,
		RetType: fixed(storage.TStr),
		Eval: func(a []storage.Value) storage.Value {
			var b strings.Builder
			for _, v := range a {
				b.WriteString(v.String())
			}
			return storage.StrValue(b.String())
		},
	})
	register(&FuncDef{
		Name: "year", MinArgs: 1, MaxArgs: 1, Cost: 3,
		RetType: fixed(storage.TInt),
		Check:   wantType("year", 0, isTemp, "date or datetime"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.IntValue(int64(dateParts(a[0]).Year()))
		},
	})
	register(&FuncDef{
		Name: "month", MinArgs: 1, MaxArgs: 1, Cost: 3,
		RetType: fixed(storage.TInt),
		Check:   wantType("month", 0, isTemp, "date or datetime"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.IntValue(int64(dateParts(a[0]).Month()))
		},
	})
	register(&FuncDef{
		Name: "day", MinArgs: 1, MaxArgs: 1, Cost: 3,
		RetType: fixed(storage.TInt),
		Check:   wantType("day", 0, isTemp, "date or datetime"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.IntValue(int64(dateParts(a[0]).Day()))
		},
	})
	register(&FuncDef{
		Name: "weekday", MinArgs: 1, MaxArgs: 1, Cost: 3,
		RetType: fixed(storage.TInt),
		Check:   wantType("weekday", 0, isTemp, "date or datetime"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.IntValue(int64(dateParts(a[0]).Weekday()))
		},
	})
	register(&FuncDef{
		Name: "hour", MinArgs: 1, MaxArgs: 1, Cost: 3,
		RetType: fixed(storage.TInt),
		Check:   wantType("hour", 0, func(t storage.Type) bool { return t == storage.TDateTime }, "datetime"),
		Eval: func(a []storage.Value) storage.Value {
			return storage.IntValue(int64(dateParts(a[0]).Hour()))
		},
	})
	register(&FuncDef{
		Name: "ifnull", MinArgs: 2, MaxArgs: 2, Cost: 1, NullSafe: true,
		RetType: func(args []Expr) storage.Type {
			t, err := storage.Promote(args[0].Type(), args[1].Type())
			if err != nil {
				return args[0].Type()
			}
			return t
		},
		Eval: func(a []storage.Value) storage.Value {
			if a[0].Null {
				return a[1]
			}
			return a[0]
		},
	})
}

// ExprCost estimates the per-row evaluation cost of an expression using the
// function cost profile. Column references and literals are free; arithmetic
// and comparisons cost 1; string comparisons cost more.
func ExprCost(e Expr) float64 {
	cost := 0.0
	Walk(e, func(x Expr) bool {
		switch v := x.(type) {
		case *Arith, *IsNull, *If:
			cost++
		case *Logic:
			cost++
		case *Cmp:
			if v.L.Type() == storage.TStr || v.R.Type() == storage.TStr {
				cost += 10
			} else {
				cost++
			}
		case *InList:
			cost += 2
		case *Call:
			cost += v.Fn.Cost
		}
		return true
	})
	return cost
}
