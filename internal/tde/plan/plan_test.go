package plan

import (
	"strings"
	"testing"

	"vizq/internal/tde/storage"
)

func col(name string, idx int, t storage.Type) *ColRef {
	return &ColRef{Name: name, Idx: idx, Typ: t}
}

func lit(v storage.Value) *Lit { return &Lit{Val: v} }

func TestExprString(t *testing.T) {
	e := &Logic{Op: LogicAnd, Args: []Expr{
		&Cmp{Op: CmpGt, L: col("delay", 0, storage.TFloat), R: lit(storage.FloatValue(10))},
		&InList{E: col("carrier", 1, storage.TStr), Vals: []storage.Value{storage.StrValue("WN")}},
	}}
	want := `(and (> delay 10) (in carrier ["WN"]))`
	if got := e.String(); got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

func TestCmpOpNegate(t *testing.T) {
	cases := map[CmpOp]CmpOp{
		CmpEq: CmpNe, CmpNe: CmpEq, CmpLt: CmpGe, CmpLe: CmpGt, CmpGt: CmpLe, CmpGe: CmpLt,
	}
	for op, want := range cases {
		if got := op.Negate(); got != want {
			t.Errorf("%v.Negate() = %v, want %v", op, got, want)
		}
	}
}

func TestRewriteAndWalk(t *testing.T) {
	e := &Arith{Op: ArithAdd, L: col("a", 0, storage.TInt), R: col("b", 3, storage.TInt), Typ: storage.TInt}
	// Rewrite does not mutate the original.
	out := RemapCols(e, map[int]int{0: 5, 3: 7})
	if got := ReferencedCols(out); len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Errorf("remapped refs = %v", got)
	}
	if got := ReferencedCols(e); got[0] != 0 || got[1] != 3 {
		t.Errorf("original mutated: %v", got)
	}
	// Walk stops descending on false.
	count := 0
	Walk(e, func(Expr) bool { count++; return false })
	if count != 1 {
		t.Errorf("walk visited %d", count)
	}
}

func TestAndSplitJoin(t *testing.T) {
	a := &Cmp{Op: CmpGt, L: col("x", 0, storage.TInt), R: lit(storage.IntValue(1))}
	b := &Cmp{Op: CmpLt, L: col("x", 0, storage.TInt), R: lit(storage.IntValue(9))}
	c := &Cmp{Op: CmpEq, L: col("y", 1, storage.TInt), R: lit(storage.IntValue(5))}
	nested := &Logic{Op: LogicAnd, Args: []Expr{a, &Logic{Op: LogicAnd, Args: []Expr{b, c}}}}
	split := AndSplit(nested)
	if len(split) != 3 {
		t.Fatalf("split = %d conjuncts", len(split))
	}
	if AndJoin(nil) != nil {
		t.Error("empty join should be nil")
	}
	if AndJoin(split[:1]) != split[0] {
		t.Error("single join should pass through")
	}
	if got := AndJoin(split); len(AndSplit(got)) != 3 {
		t.Error("join/split not inverse")
	}
}

func TestExprCostProfile(t *testing.T) {
	cheap := &Arith{Op: ArithAdd, L: col("a", 0, storage.TInt), R: lit(storage.IntValue(1)), Typ: storage.TInt}
	upper, _ := LookupFunc("upper")
	expensive := &Call{Fn: upper, Args: []Expr{col("s", 1, storage.TStr)}}
	if ExprCost(expensive) <= ExprCost(cheap) {
		t.Error("string manipulation must cost more than arithmetic")
	}
	strCmp := &Cmp{Op: CmpEq, L: col("s", 1, storage.TStr), R: lit(storage.StrValue("x"))}
	intCmp := &Cmp{Op: CmpEq, L: col("a", 0, storage.TInt), R: lit(storage.IntValue(1))}
	if ExprCost(strCmp) <= ExprCost(intCmp) {
		t.Error("string compare must cost more than int compare")
	}
}

func TestAggFnResultType(t *testing.T) {
	if AggAvg.ResultType(storage.TInt) != storage.TFloat {
		t.Error("avg is float")
	}
	if AggSum.ResultType(storage.TInt) != storage.TInt || AggSum.ResultType(storage.TFloat) != storage.TFloat {
		t.Error("sum keeps numeric class")
	}
	if AggCount.ResultType(storage.TStr) != storage.TInt {
		t.Error("count is int")
	}
	if AggMin.ResultType(storage.TStr) != storage.TStr {
		t.Error("min keeps type")
	}
	if _, err := ParseAggFn("median"); err == nil {
		t.Error("unknown agg should fail")
	}
}

func TestFuncRegistry(t *testing.T) {
	if _, ok := LookupFunc("UPPER"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if len(FuncNames()) < 15 {
		t.Errorf("registry too small: %v", FuncNames())
	}
	ifnull, _ := LookupFunc("ifnull")
	out := ifnull.Eval([]storage.Value{storage.NullValue(storage.TInt), storage.IntValue(7)})
	if out.I != 7 {
		t.Errorf("ifnull = %v", out)
	}
	substr, _ := LookupFunc("substr")
	if got := substr.Eval([]storage.Value{storage.StrValue("hello"), storage.IntValue(1), storage.IntValue(3)}); got.S != "ell" {
		t.Errorf("substr = %q", got.S)
	}
	// Out-of-range substr clamps.
	if got := substr.Eval([]storage.Value{storage.StrValue("hi"), storage.IntValue(5), storage.IntValue(3)}); got.S != "" {
		t.Errorf("clamped substr = %q", got.S)
	}
}

func TestFormatWithShared(t *testing.T) {
	vals := []storage.Value{storage.IntValue(1), storage.IntValue(2)}
	c, err := storage.BuildColumn("k", storage.TInt, storage.CollBinary, vals, storage.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := storage.NewTable("Extract", "tiny", []*storage.Column{c})
	if err != nil {
		t.Fatal(err)
	}
	scan := &Scan{Table: tbl, ColIdxs: []int{0}}
	shared := &Shared{Child: scan, ID: 1}
	ex := &Exchange{Inputs: []Node{
		&Join{Left: scan.WithChildren(nil), Right: shared, LKeys: []int{0}, RKeys: []int{0}},
		&Join{Left: scan.WithChildren(nil), Right: shared, LKeys: []int{0}, RKeys: []int{0}},
	}}
	got := Format(ex)
	if strings.Count(got, "shared-table #1") != 2 {
		t.Errorf("both references shown:\n%s", got)
	}
	// The shared child subtree prints exactly once.
	if strings.Count(got, "scan Extract.tiny [k]\n") < 1 {
		t.Errorf("missing scan lines:\n%s", got)
	}
}

func TestSchemaComputation(t *testing.T) {
	vals := []storage.Value{storage.StrValue("a"), storage.StrValue("b")}
	c1, _ := storage.BuildColumn("k", storage.TInt, storage.CollBinary,
		[]storage.Value{storage.IntValue(1), storage.IntValue(2)}, storage.BuildOptions{})
	c2, _ := storage.BuildColumn("s", storage.TStr, storage.CollCI, vals, storage.BuildOptions{})
	tbl, _ := storage.NewTable("Extract", "x", []*storage.Column{c1, c2})
	scan := &Scan{Table: tbl, ColIdxs: []int{0, 1}}
	agg := &Aggregate{Child: scan, GroupBy: []int{1},
		Aggs: []AggSpec{{Fn: AggCount, ArgIdx: -1, Name: "n"}, {Fn: AggAvg, ArgIdx: 0, Name: "a"}}}
	sch := agg.Schema()
	if len(sch) != 3 || sch[0].Name != "s" || sch[0].Coll != storage.CollCI {
		t.Errorf("schema[0] = %+v", sch[0])
	}
	if sch[1].Type != storage.TInt || sch[2].Type != storage.TFloat {
		t.Errorf("agg types = %v %v", sch[1].Type, sch[2].Type)
	}
	j := &Join{Left: scan, Right: scan, LKeys: []int{0}, RKeys: []int{0}}
	if len(j.Schema()) != 4 {
		t.Errorf("join schema = %d cols", len(j.Schema()))
	}
}
