package plan

import (
	"fmt"
	"strings"

	"vizq/internal/tde/storage"
)

// ColInfo describes one column of an operator's output schema.
type ColInfo struct {
	Name string
	Type storage.Type
	Coll storage.Collation
}

// Node is a logical/physical operator. The same tree form is produced by the
// compiler, rewritten by the optimizer (including parallelization) and
// interpreted by the executor, mirroring the TDE's uniform operator view.
type Node interface {
	// Schema returns the output columns.
	Schema() []ColInfo
	// Children returns the input operators.
	Children() []Node
	// WithChildren returns a shallow copy with the inputs replaced.
	WithChildren(ch []Node) Node
	// Label renders the operator (without children) for plan printing.
	Label() string
}

// RowRange is a half-open physical row interval [From, To).
type RowRange struct {
	From, To int64
}

// Partition identifies one fraction of a partitioned table scan: part Index
// of Count. Count == 0 means the scan is unpartitioned.
type Partition struct {
	Index, Count int
}

// Scan reads a table, projecting the columns in ColIdxs. Ranges restricts
// the scan to specific row intervals (the product of the RLE IndexTable
// rewrite, Sect. 4.3); Part selects one fraction for parallel scans
// (the FractionTable of Sect. 4.2.1). IndexNote documents the rewrite that
// produced Ranges for plan display.
type Scan struct {
	Table     *storage.Table
	ColIdxs   []int
	Ranges    []RowRange
	Part      Partition
	IndexNote string
}

// Schema implements Node.
func (s *Scan) Schema() []ColInfo {
	out := make([]ColInfo, len(s.ColIdxs))
	for i, ci := range s.ColIdxs {
		c := s.Table.Cols[ci]
		out[i] = ColInfo{Name: c.Name, Type: c.Type, Coll: c.Coll}
	}
	return out
}

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// WithChildren implements Node.
func (s *Scan) WithChildren(ch []Node) Node {
	c := *s
	return &c
}

// Label implements Node.
func (s *Scan) Label() string {
	cols := make([]string, len(s.ColIdxs))
	for i, ci := range s.ColIdxs {
		cols[i] = s.Table.Cols[ci].Name
	}
	l := fmt.Sprintf("scan %s [%s]", s.Table.QualifiedName(), strings.Join(cols, " "))
	if s.IndexNote != "" {
		l += " " + s.IndexNote
	}
	if s.Part.Count > 0 {
		l += fmt.Sprintf(" part %d/%d", s.Part.Index, s.Part.Count)
	}
	return l
}

// Filter keeps rows where Pred evaluates to true.
type Filter struct {
	Child Node
	Pred  Expr
}

// Schema implements Node.
func (f *Filter) Schema() []ColInfo { return f.Child.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// WithChildren implements Node.
func (f *Filter) WithChildren(ch []Node) Node { return &Filter{Child: ch[0], Pred: f.Pred} }

// Label implements Node.
func (f *Filter) Label() string { return "select " + f.Pred.String() }

// Project computes output expressions over the child rows.
type Project struct {
	Child Node
	Exprs []Expr
	Names []string
}

// Schema implements Node.
func (p *Project) Schema() []ColInfo {
	child := p.Child.Schema()
	out := make([]ColInfo, len(p.Exprs))
	for i, e := range p.Exprs {
		coll := storage.CollBinary
		if c, ok := e.(*ColRef); ok {
			coll = child[c.Idx].Coll
		}
		out[i] = ColInfo{Name: p.Names[i], Type: e.Type(), Coll: coll}
	}
	return out
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// WithChildren implements Node.
func (p *Project) WithChildren(ch []Node) Node {
	return &Project{Child: ch[0], Exprs: p.Exprs, Names: p.Names}
}

// Label implements Node.
func (p *Project) Label() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = fmt.Sprintf("%s=%s", p.Names[i], e)
	}
	return "project " + strings.Join(parts, " ")
}

// JoinKind distinguishes join semantics.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
)

// String names the join kind.
func (k JoinKind) String() string {
	if k == JoinLeft {
		return "left"
	}
	return "inner"
}

// Join is an equi-join. The engine builds a hash table from the right input
// and probes with the left (Sect. 4.2.2: fact table leftmost in a left-deep
// tree). Output schema is left columns followed by right columns.
type Join struct {
	Left, Right Node
	Kind        JoinKind
	LKeys       []int // ordinals into Left schema
	RKeys       []int // ordinals into Right schema
}

// Schema implements Node.
func (j *Join) Schema() []ColInfo {
	return append(append([]ColInfo{}, j.Left.Schema()...), j.Right.Schema()...)
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// WithChildren implements Node.
func (j *Join) WithChildren(ch []Node) Node {
	return &Join{Left: ch[0], Right: ch[1], Kind: j.Kind, LKeys: j.LKeys, RKeys: j.RKeys}
}

// Label implements Node.
func (j *Join) Label() string {
	ls, rs := j.Left.Schema(), j.Right.Schema()
	keys := make([]string, len(j.LKeys))
	for i := range j.LKeys {
		keys[i] = fmt.Sprintf("%s=%s", ls[j.LKeys[i]].Name, rs[j.RKeys[i]].Name)
	}
	return fmt.Sprintf("join %s (%s)", j.Kind, strings.Join(keys, " "))
}

// AggFn is an aggregate function.
type AggFn uint8

// Aggregate functions.
const (
	AggCount AggFn = iota // count(arg): non-null count; arg -1 = count(*)
	AggSum
	AggMin
	AggMax
	AggAvg
	AggCountD // count distinct
)

// String returns the TQL spelling.
func (f AggFn) String() string {
	return [...]string{"count", "sum", "min", "max", "avg", "countd"}[f]
}

// ParseAggFn resolves an aggregate function name.
func ParseAggFn(s string) (AggFn, error) {
	switch strings.ToLower(s) {
	case "count":
		return AggCount, nil
	case "sum":
		return AggSum, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "avg":
		return AggAvg, nil
	case "countd":
		return AggCountD, nil
	}
	return AggCount, fmt.Errorf("plan: unknown aggregate %q", s)
}

// ResultType returns the aggregate's output type given its input type.
func (f AggFn) ResultType(in storage.Type) storage.Type {
	switch f {
	case AggCount, AggCountD:
		return storage.TInt
	case AggAvg:
		return storage.TFloat
	case AggSum:
		if in == storage.TFloat {
			return storage.TFloat
		}
		return storage.TInt
	default:
		return in
	}
}

// AggSpec is one aggregate output column: Fn applied to child column ArgIdx
// (-1 for count(*)).
type AggSpec struct {
	Fn     AggFn
	ArgIdx int
	Name   string
}

// AggMode distinguishes the phases of parallel aggregation (Sect. 4.2.3).
type AggMode uint8

// Aggregation phases.
const (
	AggSingle AggMode = iota // complete aggregation in one operator
	AggLocal                 // per-partition partial aggregation
	AggGlobal                // merge of partial results
)

// String names the mode.
func (m AggMode) String() string {
	return [...]string{"", " local", " global"}[m]
}

// Aggregate groups child rows by the GroupBy ordinals and computes Aggs.
// Streaming marks the plan property that the input is already grouped, so
// the operator can emit groups as it goes instead of hashing everything.
type Aggregate struct {
	Child     Node
	GroupBy   []int
	Aggs      []AggSpec
	Mode      AggMode
	Streaming bool
}

// Schema implements Node.
func (a *Aggregate) Schema() []ColInfo {
	child := a.Child.Schema()
	out := make([]ColInfo, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		out = append(out, child[g])
	}
	for _, ag := range a.Aggs {
		in := storage.TInt
		if ag.ArgIdx >= 0 {
			in = child[ag.ArgIdx].Type
		}
		out = append(out, ColInfo{Name: ag.Name, Type: ag.Fn.ResultType(in)})
	}
	return out
}

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// WithChildren implements Node.
func (a *Aggregate) WithChildren(ch []Node) Node {
	c := *a
	c.Child = ch[0]
	return &c
}

// Label implements Node.
func (a *Aggregate) Label() string {
	child := a.Child.Schema()
	groups := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groups[i] = child[g].Name
	}
	aggs := make([]string, len(a.Aggs))
	for i, ag := range a.Aggs {
		arg := "*"
		if ag.ArgIdx >= 0 {
			arg = child[ag.ArgIdx].Name
		}
		aggs[i] = fmt.Sprintf("%s=%s(%s)", ag.Name, ag.Fn, arg)
	}
	mode := a.Mode.String()
	stream := ""
	if a.Streaming {
		stream = " streaming"
	}
	return fmt.Sprintf("aggregate%s%s (%s) (%s)", mode, stream, strings.Join(groups, " "), strings.Join(aggs, " "))
}

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort fully orders the child rows.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() []ColInfo { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// WithChildren implements Node.
func (s *Sort) WithChildren(ch []Node) Node { return &Sort{Child: ch[0], Keys: s.Keys} }

// Label implements Node.
func (s *Sort) Label() string { return "order " + sortKeysString(s.Child.Schema(), s.Keys) }

func sortKeysString(schema []ColInfo, keys []SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("(%s %s)", dir, schema[k.Col].Name)
	}
	return strings.Join(parts, " ")
}

// TopN keeps the first N rows under the sort order.
type TopN struct {
	Child Node
	N     int
	Keys  []SortKey
	// Mode mirrors aggregation: a local TopN per partition feeding a global
	// TopN keeps parallel plans correct (Sect. 4.2.3 applies the
	// local/global approach to TopN too).
	Mode AggMode
}

// Schema implements Node.
func (t *TopN) Schema() []ColInfo { return t.Child.Schema() }

// Children implements Node.
func (t *TopN) Children() []Node { return []Node{t.Child} }

// WithChildren implements Node.
func (t *TopN) WithChildren(ch []Node) Node {
	return &TopN{Child: ch[0], N: t.N, Keys: t.Keys, Mode: t.Mode}
}

// Label implements Node.
func (t *TopN) Label() string {
	return fmt.Sprintf("topn%s %d %s", t.Mode, t.N, sortKeysString(t.Child.Schema(), t.Keys))
}

// Limit truncates the child to N rows.
type Limit struct {
	Child Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema() []ColInfo { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// WithChildren implements Node.
func (l *Limit) WithChildren(ch []Node) Node { return &Limit{Child: ch[0], N: l.N} }

// Label implements Node.
func (l *Limit) Label() string { return fmt.Sprintf("limit %d", l.N) }

// Exchange merges N parallel inputs into one output stream. The Tableau 9.0
// optimizer only uses the plain N->1 form; the operator itself "has a
// capability to ... preserve the order of the input if needed"
// (Sect. 4.2.1), exposed here via MergeKeys: when non-empty, each input is
// assumed sorted on those keys and the exchange performs an order-preserving
// k-way merge.
type Exchange struct {
	Inputs    []Node
	MergeKeys []SortKey
}

// Schema implements Node.
func (e *Exchange) Schema() []ColInfo { return e.Inputs[0].Schema() }

// Children implements Node.
func (e *Exchange) Children() []Node { return e.Inputs }

// WithChildren implements Node.
func (e *Exchange) WithChildren(ch []Node) Node {
	return &Exchange{Inputs: ch, MergeKeys: e.MergeKeys}
}

// Label implements Node.
func (e *Exchange) Label() string {
	if len(e.MergeKeys) > 0 {
		return fmt.Sprintf("exchange-merge %d %s", len(e.Inputs), sortKeysString(e.Inputs[0].Schema(), e.MergeKeys))
	}
	return fmt.Sprintf("exchange %d", len(e.Inputs))
}

// Shared wraps a subtree whose materialized result is shared across the
// parallel clones referencing it (the SharedTable operator of Sect. 4.2.1).
// All clones hold the same *Shared pointer; the executor materializes the
// child once.
type Shared struct {
	Child Node
	// ID disambiguates shared nodes in plan printing.
	ID int
}

// Schema implements Node.
func (s *Shared) Schema() []ColInfo { return s.Child.Schema() }

// Children implements Node.
func (s *Shared) Children() []Node { return []Node{s.Child} }

// WithChildren implements Node.
func (s *Shared) WithChildren(ch []Node) Node { return &Shared{Child: ch[0], ID: s.ID} }

// Label implements Node.
func (s *Shared) Label() string { return fmt.Sprintf("shared-table #%d", s.ID) }

// Format renders the plan tree with indentation, one operator per line,
// suitable for golden tests of plan shapes (Figs. 3-5).
func Format(n Node) string {
	var b strings.Builder
	seen := map[*Shared]bool{}
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label())
		b.WriteString("\n")
		if sh, ok := n.(*Shared); ok {
			if seen[sh] {
				return // print shared subtree once
			}
			seen[sh] = true
		}
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}
