package opt

import (
	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// foldExpr performs constant folding and boolean simplification, the
// predicate-simplification half of the compiler's structural rewrites.
func foldExpr(e plan.Expr) plan.Expr {
	return plan.Rewrite(e, func(x plan.Expr) plan.Expr {
		if lit := tryFold(x); lit != nil {
			return lit
		}
		if l, ok := x.(*plan.Logic); ok {
			return simplifyLogic(l)
		}
		if f, ok := x.(*plan.If); ok {
			if c, ok := f.Cond.(*plan.Lit); ok {
				if c.Val.Bool() {
					return f.Then
				}
				return f.Else
			}
		}
		return x
	})
}

// tryFold evaluates an expression whose inputs are all literals.
func tryFold(x plan.Expr) plan.Expr {
	if _, ok := x.(*plan.Lit); ok {
		return nil
	}
	for _, c := range plan.Children(x) {
		if _, ok := c.(*plan.Lit); !ok {
			return nil
		}
	}
	switch x.(type) {
	case *plan.Cmp, *plan.Arith, *plan.IsNull, *plan.InList, *plan.Call:
		one := &storage.Batch{N: 1}
		v, err := exec.EvalExpr(x, one)
		if err != nil {
			return nil
		}
		return &plan.Lit{Val: v.Value(0)}
	}
	return nil
}

func simplifyLogic(l *plan.Logic) plan.Expr {
	switch l.Op {
	case plan.LogicNot:
		if lit, ok := l.Args[0].(*plan.Lit); ok {
			if lit.Val.Null {
				return &plan.Lit{Val: storage.NullValue(storage.TBool)}
			}
			return &plan.Lit{Val: storage.BoolValue(!lit.Val.Bool())}
		}
		// Double negation.
		if inner, ok := l.Args[0].(*plan.Logic); ok && inner.Op == plan.LogicNot {
			return inner.Args[0]
		}
		// Push negation into comparisons: not(a < b) => a >= b.
		if cmp, ok := l.Args[0].(*plan.Cmp); ok {
			return &plan.Cmp{Op: cmp.Op.Negate(), L: cmp.L, R: cmp.R, Coll: cmp.Coll}
		}
		return l
	case plan.LogicAnd:
		var keep []plan.Expr
		for _, a := range l.Args {
			if lit, ok := a.(*plan.Lit); ok {
				if !lit.Val.Bool() {
					return &plan.Lit{Val: storage.BoolValue(false)}
				}
				continue // drop true
			}
			keep = append(keep, a)
		}
		switch len(keep) {
		case 0:
			return &plan.Lit{Val: storage.BoolValue(true)}
		case 1:
			return keep[0]
		}
		return &plan.Logic{Op: plan.LogicAnd, Args: keep}
	default: // LogicOr
		var keep []plan.Expr
		for _, a := range l.Args {
			if lit, ok := a.(*plan.Lit); ok {
				if lit.Val.Bool() {
					return &plan.Lit{Val: storage.BoolValue(true)}
				}
				continue // drop false
			}
			keep = append(keep, a)
		}
		switch len(keep) {
		case 0:
			return &plan.Lit{Val: storage.BoolValue(false)}
		case 1:
			return keep[0]
		}
		return &plan.Logic{Op: plan.LogicOr, Args: keep}
	}
}

// domainSimplify removes conjuncts that the scanned column domains prove
// always true, and detects contradictions, using the column min/max
// statistics ("predicate simplification based on domains", Sect. 3.2).
// The predicate must sit directly above the scan that owns the columns.
func domainSimplify(pred plan.Expr, scan *plan.Scan) plan.Expr {
	conjuncts := plan.AndSplit(pred)
	var keep []plan.Expr
	for _, c := range conjuncts {
		switch classifyByDomain(c, scan) {
		case domainAlwaysTrue:
			continue
		case domainAlwaysFalse:
			return &plan.Lit{Val: storage.BoolValue(false)}
		}
		keep = append(keep, c)
	}
	out := plan.AndJoin(keep)
	if out == nil {
		return &plan.Lit{Val: storage.BoolValue(true)}
	}
	return out
}

type domainClass uint8

const (
	domainUnknown domainClass = iota
	domainAlwaysTrue
	domainAlwaysFalse
)

func classifyByDomain(e plan.Expr, scan *plan.Scan) domainClass {
	cmp, ok := e.(*plan.Cmp)
	if !ok {
		return domainUnknown
	}
	col, lit, op := cmp.L, cmp.R, cmp.Op
	cr, ok := col.(*plan.ColRef)
	if !ok {
		cr, ok = lit.(*plan.ColRef)
		if !ok {
			return domainUnknown
		}
		col, lit = cmp.R, cmp.L
		op = flipForDomain(op)
	}
	l, ok := lit.(*plan.Lit)
	if !ok || l.Val.Null {
		return domainUnknown
	}
	stats := scan.Table.Cols[scan.ColIdxs[cr.Idx]].Stats
	if stats.Min.Type == storage.TNull && stats.Min.Null {
		return domainUnknown // no stats (all-null or empty column)
	}
	coll := cmp.Coll
	cMin := storage.Compare(stats.Min, l.Val, coll) // min vs literal
	cMax := storage.Compare(stats.Max, l.Val, coll)
	hasNulls := stats.Nulls > 0

	alwaysTrue := func(cond bool) domainClass {
		// Always-true elimination is only sound without nulls: the null rows
		// would otherwise be filtered out by the comparison.
		if cond && !hasNulls {
			return domainAlwaysTrue
		}
		return domainUnknown
	}
	switch op {
	case plan.CmpLt:
		if cMin >= 0 { // min >= v: col < v never holds
			return domainAlwaysFalse
		}
		return alwaysTrue(cMax < 0)
	case plan.CmpLe:
		if cMin > 0 {
			return domainAlwaysFalse
		}
		return alwaysTrue(cMax <= 0)
	case plan.CmpGt:
		if cMax <= 0 {
			return domainAlwaysFalse
		}
		return alwaysTrue(cMin > 0)
	case plan.CmpGe:
		if cMax < 0 {
			return domainAlwaysFalse
		}
		return alwaysTrue(cMin >= 0)
	case plan.CmpEq:
		if cMin > 0 || cMax < 0 {
			return domainAlwaysFalse
		}
		return alwaysTrue(cMin == 0 && cMax == 0 && stats.Distinct == 1)
	case plan.CmpNe:
		if cMin == 0 && cMax == 0 && stats.Distinct == 1 {
			return domainAlwaysFalse
		}
		return alwaysTrue(cMin > 0 || cMax < 0)
	}
	return domainUnknown
}

// flipForDomain mirrors the comparison when the column is on the right side.
func flipForDomain(op plan.CmpOp) plan.CmpOp {
	switch op {
	case plan.CmpLt:
		return plan.CmpGt
	case plan.CmpLe:
		return plan.CmpGe
	case plan.CmpGt:
		return plan.CmpLt
	case plan.CmpGe:
		return plan.CmpLe
	}
	return op
}
