package opt

import (
	"fmt"

	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// transformUp applies f bottom-up across the tree.
func transformUp(n plan.Node, f func(plan.Node) plan.Node) plan.Node {
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]plan.Node, len(ch))
		changed := false
		for i, c := range ch {
			newCh[i] = transformUp(c, f)
			if newCh[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.WithChildren(newCh)
		}
	}
	return f(n)
}

// foldNode constant-folds the expressions carried by a node.
func foldNode(n plan.Node) plan.Node {
	switch x := n.(type) {
	case *plan.Filter:
		pred := foldExpr(x.Pred)
		if lit, ok := pred.(*plan.Lit); ok && lit.Val.Bool() && !lit.Val.Null {
			return x.Child // always-true filter disappears
		}
		if pred != x.Pred {
			return &plan.Filter{Child: x.Child, Pred: pred}
		}
	case *plan.Project:
		exprs := make([]plan.Expr, len(x.Exprs))
		changed := false
		for i, e := range x.Exprs {
			exprs[i] = foldExpr(e)
			if exprs[i] != e {
				changed = true
			}
		}
		if changed {
			return &plan.Project{Child: x.Child, Exprs: exprs, Names: x.Names}
		}
	}
	return n
}

// pushDownFilters moves predicates toward the scans: merging adjacent
// filters, sliding through projections and sorts, splitting conjuncts
// across join sides, and pushing group-column predicates below aggregates.
func pushDownFilters(n plan.Node) plan.Node {
	for i := 0; i < 8; i++ { // fixpoint within a small bound
		changed := false
		n = transformUp(n, func(m plan.Node) plan.Node {
			f, ok := m.(*plan.Filter)
			if !ok {
				return m
			}
			if out := pushFilterOnce(f); out != nil {
				changed = true
				return out
			}
			return m
		})
		if !changed {
			return n
		}
	}
	return n
}

// pushFilterOnce applies one push-down step to a filter, or returns nil.
func pushFilterOnce(f *plan.Filter) plan.Node {
	switch child := f.Child.(type) {
	case *plan.Filter:
		return &plan.Filter{
			Child: child.Child,
			Pred:  plan.AndJoin(append(plan.AndSplit(child.Pred), plan.AndSplit(f.Pred)...)),
		}
	case *plan.Project:
		// Substitute projected expressions into the predicate.
		pred := plan.Rewrite(f.Pred, func(x plan.Expr) plan.Expr {
			if cr, ok := x.(*plan.ColRef); ok {
				return child.Exprs[cr.Idx]
			}
			return x
		})
		return &plan.Project{
			Child: &plan.Filter{Child: child.Child, Pred: pred},
			Exprs: child.Exprs, Names: child.Names,
		}
	case *plan.Sort:
		return &plan.Sort{Child: &plan.Filter{Child: child.Child, Pred: f.Pred}, Keys: child.Keys}
	case *plan.Join:
		nL := len(child.Left.Schema())
		var leftC, rightC, keep []plan.Expr
		for _, c := range plan.AndSplit(f.Pred) {
			refs := plan.ReferencedCols(c)
			left, right := false, false
			for _, r := range refs {
				if r < nL {
					left = true
				} else {
					right = true
				}
			}
			switch {
			case left && !right:
				leftC = append(leftC, c)
			case right && !left && child.Kind == plan.JoinInner:
				m := map[int]int{}
				for _, r := range refs {
					m[r] = r - nL
				}
				rightC = append(rightC, plan.RemapCols(c, m))
			default:
				keep = append(keep, c)
			}
		}
		if leftC == nil && rightC == nil {
			return nil
		}
		l, r := child.Left, child.Right
		if leftC != nil {
			l = &plan.Filter{Child: l, Pred: plan.AndJoin(leftC)}
		}
		if rightC != nil {
			r = &plan.Filter{Child: r, Pred: plan.AndJoin(rightC)}
		}
		var out plan.Node = &plan.Join{Left: l, Right: r, Kind: child.Kind, LKeys: child.LKeys, RKeys: child.RKeys}
		if keep != nil {
			out = &plan.Filter{Child: out, Pred: plan.AndJoin(keep)}
		}
		return out
	case *plan.Aggregate:
		nG := len(child.GroupBy)
		var push, keep []plan.Expr
		for _, c := range plan.AndSplit(f.Pred) {
			ok := true
			m := map[int]int{}
			for _, r := range plan.ReferencedCols(c) {
				if r >= nG {
					ok = false
					break
				}
				m[r] = child.GroupBy[r]
			}
			if ok {
				push = append(push, plan.RemapCols(c, m))
			} else {
				keep = append(keep, c)
			}
		}
		if push == nil {
			return nil
		}
		agg := child.WithChildren([]plan.Node{&plan.Filter{Child: child.Child, Pred: plan.AndJoin(push)}})
		if keep != nil {
			return &plan.Filter{Child: agg, Pred: plan.AndJoin(keep)}
		}
		return agg
	}
	return nil
}

// simplifyDomains removes filter conjuncts that the scan column statistics
// prove redundant or contradictory.
func simplifyDomains(n plan.Node) plan.Node {
	return transformUp(n, func(m plan.Node) plan.Node {
		f, ok := m.(*plan.Filter)
		if !ok {
			return m
		}
		scan, ok := f.Child.(*plan.Scan)
		if !ok {
			return m
		}
		pred := domainSimplify(f.Pred, scan)
		if lit, ok := pred.(*plan.Lit); ok && lit.Val.Bool() && !lit.Val.Null {
			return scan
		}
		if pred != f.Pred {
			return &plan.Filter{Child: scan, Pred: pred}
		}
		return m
	})
}

// Options tunes the optimizer.
type Options struct {
	// MaxDOP bounds the degree of parallelism; <= 1 disables parallel plans.
	MaxDOP int
	// GrainWork is the amount of rows*cost one partition should own before
	// another is worth spawning.
	GrainWork float64
	// RLEIndexMaxSelectivity bounds the fraction of rows a predicate may
	// select for the RLE index-range rewrite to fire.
	RLEIndexMaxSelectivity float64
	// DisableRLEIndex turns the Sect. 4.3 rewrite off.
	DisableRLEIndex bool
	// AssumeReferentialIntegrity lets join culling remove inner n:1 joins;
	// Tableau's join culling relies on the modeled relationship being sound.
	AssumeReferentialIntegrity bool
	// DisableRangePartition turns off range-partitioned parallel aggregation
	// (the optimizer then always uses local/global aggregation).
	DisableRangePartition bool
	// MinPartitionRows is the smallest row count worth a scan fraction;
	// tables below 2x this never parallelize.
	MinPartitionRows int64
	// EnableOrderPreservingExchange lets Sort parallelize as per-fraction
	// sorts merged by an order-preserving Exchange (the operator capability
	// of Sect. 4.2.1, which the Tableau 9.0 optimizer leaves unused — off by
	// default to match the shipped behaviour).
	EnableOrderPreservingExchange bool
}

// DefaultOptions mirror the shipping configuration.
func DefaultOptions() Options {
	return Options{
		MaxDOP:                     4,
		GrainWork:                  1 << 17,
		RLEIndexMaxSelectivity:     0.3,
		AssumeReferentialIntegrity: true,
		MinPartitionRows:           4096,
	}
}

// Logical runs the rule-based logical rewrites (no parallelization).
func Logical(n plan.Node, o Options) plan.Node {
	n = transformUp(n, foldNode)
	n = pushDownFilters(n)
	n = transformUp(n, foldNode)
	n = simplifyDomains(n)
	n = pruneAndCull(n, o)
	if !o.DisableRLEIndex {
		n = applyRLEIndex(n, o)
	}
	n = markStreaming(n)
	return n
}

// Optimize runs the full pipeline: logical rewrites, then parallel plan
// generation.
func Optimize(n plan.Node, o Options) plan.Node {
	n = Logical(n, o)
	return Parallelize(n, o)
}

// ---- column pruning + join culling ----

func pruneAndCull(n plan.Node, o Options) plan.Node {
	need := make([]bool, len(n.Schema()))
	for i := range need {
		need[i] = true
	}
	out, _ := prune(n, need, o)
	return out
}

// prune narrows every operator to the columns its ancestors need, returning
// the rewritten node and a mapping old-ordinal -> new-ordinal (-1 when
// dropped). Join culling happens here: when nothing from the n:1 side of a
// join is needed beyond the keys, the join is removed.
func prune(n plan.Node, need []bool, o Options) (plan.Node, []int) {
	switch x := n.(type) {
	case *plan.Scan:
		var keep []int
		mapping := make([]int, len(x.ColIdxs))
		for i := range x.ColIdxs {
			if need[i] {
				mapping[i] = len(keep)
				keep = append(keep, x.ColIdxs[i])
			} else {
				mapping[i] = -1
			}
		}
		if len(keep) == 0 {
			// Always keep one column so the scan produces row counts.
			keep = append(keep, x.ColIdxs[0])
			mapping[0] = 0
		}
		c := *x
		c.ColIdxs = keep
		return &c, mapping

	case *plan.Filter:
		childNeed := append([]bool(nil), need...)
		for _, r := range plan.ReferencedCols(x.Pred) {
			childNeed[r] = true
		}
		child, m := prune(x.Child, childNeed, o)
		return &plan.Filter{Child: child, Pred: remapExpr(x.Pred, m)}, m

	case *plan.Project:
		childNeed := make([]bool, len(x.Child.Schema()))
		for i, e := range x.Exprs {
			if !need[i] {
				continue
			}
			for _, r := range plan.ReferencedCols(e) {
				childNeed[r] = true
			}
		}
		ensureOne(childNeed)
		child, m := prune(x.Child, childNeed, o)
		out := &plan.Project{Child: child}
		mapping := make([]int, len(x.Exprs))
		for i, e := range x.Exprs {
			if !need[i] {
				mapping[i] = -1
				continue
			}
			mapping[i] = len(out.Exprs)
			out.Exprs = append(out.Exprs, remapExpr(e, m))
			out.Names = append(out.Names, x.Names[i])
		}
		if len(out.Exprs) == 0 {
			// Nothing needed: keep the first output to preserve row counts.
			out.Exprs = append(out.Exprs, remapExpr(x.Exprs[0], m))
			out.Names = append(out.Names, x.Names[0])
			mapping[0] = 0
		}
		return out, mapping

	case *plan.Join:
		nL := len(x.Left.Schema())
		nR := len(x.Right.Schema())
		needL := make([]bool, nL)
		needR := make([]bool, nR)
		for i := 0; i < nL; i++ {
			needL[i] = need[i]
		}
		for j := 0; j < nR; j++ {
			needR[j] = need[nL+j]
		}

		// Join culling: the right side contributes nothing beyond its keys,
		// and each probe row matches at most one build row.
		if cullable(x, needR, o) {
			childNeedL := append([]bool(nil), needL...)
			for _, k := range x.LKeys {
				childNeedL[k] = true
			}
			left, mL := prune(x.Left, childNeedL, o)
			mapping := make([]int, nL+nR)
			copy(mapping, mL)
			for j := 0; j < nR; j++ {
				mapping[nL+j] = -1
				// A needed right key column aliases the matching left key.
				for ki, rk := range x.RKeys {
					if rk == j && needR[j] {
						mapping[nL+j] = mL[x.LKeys[ki]]
					}
				}
			}
			return left, mapping
		}

		for _, k := range x.LKeys {
			needL[k] = true
		}
		for _, k := range x.RKeys {
			needR[k] = true
		}
		left, mL := prune(x.Left, needL, o)
		right, mR := prune(x.Right, needR, o)
		j := &plan.Join{Left: left, Right: right, Kind: x.Kind}
		for ki := range x.LKeys {
			j.LKeys = append(j.LKeys, mL[x.LKeys[ki]])
			j.RKeys = append(j.RKeys, mR[x.RKeys[ki]])
		}
		nLNew := len(left.Schema())
		mapping := make([]int, nL+nR)
		for i := 0; i < nL; i++ {
			mapping[i] = mL[i]
		}
		for jx := 0; jx < nR; jx++ {
			if mR[jx] >= 0 {
				mapping[nL+jx] = nLNew + mR[jx]
			} else {
				mapping[nL+jx] = -1
			}
		}
		return j, mapping

	case *plan.Aggregate:
		nG := len(x.GroupBy)
		childNeed := make([]bool, len(x.Child.Schema()))
		for _, g := range x.GroupBy {
			childNeed[g] = true
		}
		var keptAggs []plan.AggSpec
		mapping := make([]int, nG+len(x.Aggs))
		for i := 0; i < nG; i++ {
			mapping[i] = i
		}
		for k, a := range x.Aggs {
			if !need[nG+k] {
				mapping[nG+k] = -1
				continue
			}
			if a.ArgIdx >= 0 {
				childNeed[a.ArgIdx] = true
			}
			mapping[nG+k] = nG + len(keptAggs)
			keptAggs = append(keptAggs, a)
		}
		ensureOne(childNeed)
		child, m := prune(x.Child, childNeed, o)
		out := &plan.Aggregate{Child: child, Mode: x.Mode, Streaming: x.Streaming}
		for _, g := range x.GroupBy {
			out.GroupBy = append(out.GroupBy, m[g])
		}
		for _, a := range keptAggs {
			na := a
			if na.ArgIdx >= 0 {
				na.ArgIdx = m[na.ArgIdx]
			}
			out.Aggs = append(out.Aggs, na)
		}
		return out, mapping

	case *plan.Sort:
		childNeed := append([]bool(nil), need...)
		for _, k := range x.Keys {
			childNeed[k.Col] = true
		}
		child, m := prune(x.Child, childNeed, o)
		keys := make([]plan.SortKey, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = plan.SortKey{Col: m[k.Col], Desc: k.Desc}
		}
		return &plan.Sort{Child: child, Keys: keys}, m

	case *plan.TopN:
		childNeed := append([]bool(nil), need...)
		for _, k := range x.Keys {
			childNeed[k.Col] = true
		}
		child, m := prune(x.Child, childNeed, o)
		keys := make([]plan.SortKey, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = plan.SortKey{Col: m[k.Col], Desc: k.Desc}
		}
		return &plan.TopN{Child: child, N: x.N, Keys: keys, Mode: x.Mode}, m

	case *plan.Limit:
		child, m := prune(x.Child, need, o)
		return &plan.Limit{Child: child, N: x.N}, m
	}

	// Unknown node: leave untouched with identity mapping.
	mapping := make([]int, len(n.Schema()))
	for i := range mapping {
		mapping[i] = i
	}
	return n, mapping
}

func ensureOne(need []bool) {
	for _, n := range need {
		if n {
			return
		}
	}
	if len(need) > 0 {
		need[0] = true
	}
}

// cullable decides whether the join's right side can be removed entirely
// ("removal of unnecessary joins", Sect. 4.1.2 / 6).
func cullable(j *plan.Join, needR []bool, o Options) bool {
	if j.Kind == plan.JoinInner && !o.AssumeReferentialIntegrity {
		return false
	}
	for idx, needed := range needR {
		if !needed {
			continue
		}
		isKey := false
		for _, rk := range j.RKeys {
			if rk == idx {
				isKey = true
				break
			}
		}
		if !isKey {
			return false
		}
	}
	return Unique(j.Right, j.RKeys)
}

func remapExpr(e plan.Expr, m []int) plan.Expr {
	mm := make(map[int]int, len(m))
	for old, nw := range m {
		if nw >= 0 {
			mm[old] = nw
		}
	}
	return plan.RemapCols(e, mm)
}

// ---- RLE index-range rewrite (Sect. 4.3) ----

// applyRLEIndex rewrites selective filters over run-length encoded columns
// into range-restricted scans: the run list acts as the IndexTable
// (value, count, start) and the qualifying runs become the scan's row
// ranges, skipping everything else on disk.
func applyRLEIndex(n plan.Node, o Options) plan.Node {
	return transformUp(n, func(m plan.Node) plan.Node {
		f, ok := m.(*plan.Filter)
		if !ok {
			return m
		}
		scan, ok := f.Child.(*plan.Scan)
		if !ok || scan.Ranges != nil {
			return m
		}
		conjuncts := plan.AndSplit(f.Pred)
		bestIdx := -1
		var bestRanges []plan.RowRange
		bestRows := int64(1 << 62)
		var bestCol string
		for ci, c := range conjuncts {
			col, ok := singleColumn(c)
			if !ok {
				continue
			}
			tcol := scan.Table.Cols[scan.ColIdxs[col]]
			runs, isRLE := tcol.RLERuns()
			if !isRLE {
				continue
			}
			ranges, rows, ok := matchRuns(c, col, tcol, runs, scan)
			if !ok {
				continue
			}
			if float64(rows) > o.RLEIndexMaxSelectivity*float64(scan.Table.Rows) {
				continue
			}
			if rows < bestRows {
				bestRows = rows
				bestIdx = ci
				bestRanges = ranges
				bestCol = tcol.Name
			}
		}
		if bestIdx < 0 {
			return m
		}
		ns := *scan
		ns.Ranges = bestRanges
		ns.IndexNote = fmt.Sprintf("index(%s)", bestCol)
		rest := append(append([]plan.Expr{}, conjuncts[:bestIdx]...), conjuncts[bestIdx+1:]...)
		if len(rest) == 0 {
			return &ns
		}
		return &plan.Filter{Child: &ns, Pred: plan.AndJoin(rest)}
	})
}

// singleColumn reports the single column ordinal a predicate references.
func singleColumn(e plan.Expr) (int, bool) {
	refs := plan.ReferencedCols(e)
	if len(refs) != 1 {
		return 0, false
	}
	return refs[0], true
}

// matchRuns evaluates the predicate once per run and collects the row
// ranges of qualifying runs (coalescing adjacent ones).
func matchRuns(pred plan.Expr, col int, tcol *storage.Column, runs []storage.Run, scan *plan.Scan) ([]plan.RowRange, int64, bool) {
	width := len(scan.ColIdxs)
	var ranges []plan.RowRange
	var rows int64
	for _, r := range runs {
		if r.Null {
			continue // null predicate never holds
		}
		cols := make([]*storage.Vector, width)
		v := &storage.Vector{Type: tcol.Type, I: []int64{r.Value}}
		if tcol.Dict != nil {
			v.Type = storage.TStr
			v.Dict = tcol.Dict
		} else if tcol.Type == storage.TFloat {
			return nil, 0, false // RLE data is integer-backed
		}
		cols[col] = v
		res, err := exec.EvalExpr(pred, &storage.Batch{Cols: cols, N: 1})
		if err != nil {
			return nil, 0, false
		}
		if res.I[0] != 0 && !res.IsNull(0) {
			if n := len(ranges); n > 0 && ranges[n-1].To == r.Start {
				ranges[n-1].To = r.Start + r.Count
			} else {
				ranges = append(ranges, plan.RowRange{From: r.Start, To: r.Start + r.Count})
			}
			rows += r.Count
		}
	}
	return ranges, rows, true
}

// markStreaming flags aggregates whose input is already grouped by the
// group-by columns, so a streaming implementation applies (Sect. 4.2.4).
func markStreaming(n plan.Node) plan.Node {
	return transformUp(n, func(m plan.Node) plan.Node {
		a, ok := m.(*plan.Aggregate)
		if !ok || a.Streaming || hasCountD(a) {
			return m
		}
		if GroupedBy(a.Child, a.GroupBy) {
			c := *a
			c.Streaming = true
			return &c
		}
		return m
	})
}

func hasCountD(a *plan.Aggregate) bool {
	for _, s := range a.Aggs {
		if s.Fn == plan.AggCountD {
			return true
		}
	}
	return false
}
