package opt

import (
	"context"
	"strings"
	"testing"

	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
	"vizq/internal/tde/tql"
)

// rleDB builds a table whose "region" column is run-length encoded (sorted,
// few distinct values) — the Sect. 4.3 scenario.
func rleDB(t testing.TB, rows int, regions int) *storage.Database {
	t.Helper()
	regionVals := make([]storage.Value, rows)
	amountVals := make([]storage.Value, rows)
	names := []string{"east", "west", "north", "south", "central", "alpine", "coastal", "plains"}
	for i := 0; i < rows; i++ {
		r := i * regions / rows
		regionVals[i] = storage.StrValue(names[r%len(names)])
		amountVals[i] = storage.IntValue(int64(i % 997))
	}
	region, err := storage.BuildColumn("region", storage.TStr, storage.CollBinary, regionVals, storage.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if region.Encoding() != storage.EncRLE {
		t.Fatalf("region should be RLE, got %v", region.Encoding())
	}
	amount, err := storage.BuildColumn("amount", storage.TInt, storage.CollBinary, amountVals, storage.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := storage.NewTable("Extract", "sales", []*storage.Column{region, amount})
	if err != nil {
		t.Fatal(err)
	}
	tbl.SortKey = []string{"region"}
	d := storage.NewDatabase("rle")
	if err := d.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRLEIndexRewriteFires(t *testing.T) {
	d := rleDB(t, 8000, 8)
	n, err := tql.Compile(`(select (table sales) (= region "north"))`, d, tql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.MaxDOP = 1
	got := plan.Format(Logical(n, o))
	if !strings.Contains(got, "index(region)") {
		t.Fatalf("RLE index rewrite should fire:\n%s", got)
	}
	if strings.Contains(got, "select") {
		t.Errorf("the matched conjunct should be consumed by the ranges:\n%s", got)
	}
}

func TestRLEIndexRewriteCorrect(t *testing.T) {
	d := rleDB(t, 8000, 8)
	for _, q := range []string{
		`(aggregate (select (table sales) (= region "north")) (groupby) (aggs (n count *) (s sum amount)))`,
		`(aggregate (select (table sales) (in region ["east" "south"])) (groupby region) (aggs (n count *)))`,
		`(aggregate (select (table sales) (and (= region "west") (> amount 100))) (groupby) (aggs (n count *)))`,
		`(aggregate (select (table sales) (< region "f")) (groupby region) (aggs (n count *)))`,
	} {
		n, err := tql.Compile(q, d, tql.Options{})
		if err != nil {
			t.Fatal(err)
		}
		withIdx := DefaultOptions()
		withIdx.MaxDOP = 1
		noIdx := withIdx
		noIdx.DisableRLEIndex = true

		a, err := exec.Run(context.Background(), Logical(n, withIdx))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		n2, _ := tql.Compile(q, d, tql.Options{})
		b, err := exec.Run(context.Background(), Logical(n2, noIdx))
		if err != nil {
			t.Fatal(err)
		}
		if a.N != b.N {
			t.Fatalf("%s: %d vs %d rows", q, a.N, b.N)
		}
		for i := 0; i < a.N; i++ {
			for c := range a.Cols {
				av, bv := a.Value(i, c), b.Value(i, c)
				if !storage.Equal(av, bv, storage.CollBinary) {
					t.Fatalf("%s: row %d col %d: %v vs %v", q, i, c, av, bv)
				}
			}
		}
	}
}

func TestRLEIndexSelectivityGuard(t *testing.T) {
	d := rleDB(t, 8000, 2) // each region covers 50% of rows
	n, err := tql.Compile(`(select (table sales) (= region "east"))`, d, tql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.MaxDOP = 1
	got := plan.Format(Logical(n, o))
	if strings.Contains(got, "index(") {
		t.Errorf("unselective predicate should not use index ranges:\n%s", got)
	}
}

func TestRLEIndexSkipsNonRLEColumns(t *testing.T) {
	d := rleDB(t, 8000, 8)
	n, err := tql.Compile(`(select (table sales) (= amount 5))`, d, tql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.MaxDOP = 1
	got := plan.Format(Logical(n, o))
	if strings.Contains(got, "index(") {
		t.Errorf("plain column should not index:\n%s", got)
	}
}

func TestRLEIndexWithParallelism(t *testing.T) {
	// The index rewrite reduces rows, interacting with DOP choice; results
	// must stay correct either way (Sect. 4.3 discusses the tension).
	d := rleDB(t, 40_000, 8)
	q := `(aggregate (select (table sales) (= region "north")) (groupby amount) (aggs (n count *)))`
	n, _ := tql.Compile(q, d, tql.Options{})
	par := Optimize(n, forcedParallel())
	a, err := exec.Run(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := tql.Compile(q, d, tql.Options{})
	o := DefaultOptions()
	o.MaxDOP = 1
	o.DisableRLEIndex = true
	b, err := exec.Run(context.Background(), Logical(n2, o))
	if err != nil {
		t.Fatal(err)
	}
	if a.N != b.N {
		t.Fatalf("parallel+index %d rows vs serial %d", a.N, b.N)
	}
}
