package opt

import (
	"context"
	"strings"
	"testing"

	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/tql"
)

func TestOrderPreservingExchangePlanShape(t *testing.T) {
	o := forcedParallel()
	o.EnableOrderPreservingExchange = true
	n := compile(t, `(order (select (table flights) (> distance 500)) (asc market) (desc distance))`)
	got := plan.Format(Optimize(n, o))
	if !strings.HasPrefix(got, "exchange-merge 4") {
		t.Fatalf("root should be the merging exchange:\n%s", got)
	}
	if strings.Count(got, "order") != 4 {
		t.Errorf("each fraction should sort locally:\n%s", got)
	}
	// Default (shipped) behaviour keeps the serial sort above a plain exchange.
	n = compile(t, `(order (select (table flights) (> distance 500)) (asc market))`)
	got = plan.Format(Optimize(n, forcedParallel()))
	if !strings.HasPrefix(got, "order") || strings.Contains(got, "exchange-merge") {
		t.Errorf("default must not use order preservation:\n%s", got)
	}
}

func TestOrderPreservingExchangeCorrect(t *testing.T) {
	src := `(order (select (table flights) (> distance 300)) (asc market) (desc distance) (asc date))`
	o := forcedParallel()
	o.EnableOrderPreservingExchange = true
	n, err := tql.Compile(src, db(t), tql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := exec.Run(context.Background(), Optimize(n, o))
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := tql.Compile(src, db(t), tql.Options{})
	serialOpts := DefaultOptions()
	serialOpts.MaxDOP = 1
	want, err := exec.Run(context.Background(), Logical(n2, serialOpts))
	if err != nil {
		t.Fatal(err)
	}
	if merged.N != want.N {
		t.Fatalf("rows %d vs %d", merged.N, want.N)
	}
	// The merged stream must be fully ordered on the sort keys (ties can
	// permute, so compare keys rather than whole rows).
	mi := merged.ColumnIndex("market")
	di := merged.ColumnIndex("distance")
	for i := 1; i < merged.N; i++ {
		a, b := merged.Value(i-1, mi), merged.Value(i, mi)
		if a.S > b.S {
			t.Fatalf("market order broken at %d: %q > %q", i, a.S, b.S)
		}
		if a.S == b.S && merged.Value(i-1, di).I < merged.Value(i, di).I {
			t.Fatalf("distance tiebreak broken at %d", i)
		}
	}
	// Same multiset of key values as the serial plan.
	counts := map[string]int{}
	for i := 0; i < want.N; i++ {
		counts[want.Value(i, mi).S]++
	}
	for i := 0; i < merged.N; i++ {
		counts[merged.Value(i, mi).S]--
	}
	for k, v := range counts {
		if v != 0 {
			t.Fatalf("market %q off by %d", k, v)
		}
	}
}

func TestMergedExchangePreservesStreamingAgg(t *testing.T) {
	// Ordering flows through the merging exchange, so an aggregate above it
	// can stream (Sect. 4.2.4's interaction between parallelization and
	// sorting-based rewrites).
	o := forcedParallel()
	o.EnableOrderPreservingExchange = true
	n := compile(t, `
		(aggregate
			(order (select (table flights) (> distance 300)) (asc market))
			(groupby market) (aggs (n count *)))`)
	got := plan.Format(Optimize(n, o))
	if !strings.Contains(got, "aggregate streaming") {
		t.Errorf("aggregate above merge should stream:\n%s", got)
	}
}
