package opt

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// TestFoldExprEquivalenceRandom checks the constant folder against direct
// evaluation: for random constant expressions, foldExpr must produce a
// literal with the same value the evaluator computes.
func TestFoldExprEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lit := func() plan.Expr {
		switch rng.Intn(3) {
		case 0:
			return &plan.Lit{Val: storage.IntValue(int64(rng.Intn(21) - 10))}
		case 1:
			return &plan.Lit{Val: storage.FloatValue(float64(rng.Intn(100)) / 4)}
		default:
			return &plan.Lit{Val: storage.BoolValue(rng.Intn(2) == 0)}
		}
	}
	var build func(depth int) plan.Expr
	build = func(depth int) plan.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return lit()
		}
		switch rng.Intn(4) {
		case 0:
			l, r := numeric(build(depth-1)), numeric(build(depth-1))
			return &plan.Arith{Op: plan.ArithOp(rng.Intn(4)), L: l, R: r, Typ: promoteTyp(l, r)}
		case 1:
			l, r := numeric(build(depth-1)), numeric(build(depth-1))
			return &plan.Cmp{Op: plan.CmpOp(rng.Intn(6)), L: l, R: r}
		case 2:
			return &plan.Logic{Op: plan.LogicAnd, Args: []plan.Expr{boolean(build(depth - 1)), boolean(build(depth - 1))}}
		default:
			return &plan.IsNull{E: build(depth - 1)}
		}
	}
	for trial := 0; trial < 200; trial++ {
		e := build(3)
		folded := foldExpr(e)
		if _, ok := folded.(*plan.Lit); !ok {
			t.Fatalf("trial %d: %s did not fold to a literal (got %s)", trial, e, folded)
		}
		one := &storage.Batch{N: 1}
		want, err := exec.EvalExpr(e, one)
		if err != nil {
			continue // type mismatches the generator produced are fine
		}
		got, err := exec.EvalExpr(folded, one)
		if err != nil {
			t.Fatalf("trial %d: folded eval failed: %v", trial, err)
		}
		a, b := want.Value(0), got.Value(0)
		if a.Null != b.Null || (!a.Null && storage.Compare(a, b, storage.CollBinary) != 0) {
			t.Fatalf("trial %d: %s folds to %v, eval gives %v", trial, e, b, a)
		}
	}
}

func numeric(e plan.Expr) plan.Expr {
	if e.Type().Numeric() {
		return e
	}
	return &plan.Lit{Val: storage.IntValue(1)}
}

func boolean(e plan.Expr) plan.Expr {
	if e.Type() == storage.TBool {
		return e
	}
	return &plan.Lit{Val: storage.BoolValue(true)}
}

func promoteTyp(l, r plan.Expr) storage.Type {
	t, err := storage.Promote(l.Type(), r.Type())
	if err != nil {
		return storage.TInt
	}
	if t == storage.TBool {
		return storage.TInt
	}
	return t
}

func TestSimplifyLogicIdentities(t *testing.T) {
	colRef := &plan.ColRef{Name: "b", Idx: 0, Typ: storage.TBool}
	tru := &plan.Lit{Val: storage.BoolValue(true)}
	fls := &plan.Lit{Val: storage.BoolValue(false)}

	// x AND true => x
	got := foldExpr(&plan.Logic{Op: plan.LogicAnd, Args: []plan.Expr{colRef, tru}})
	if got.String() != "b" {
		t.Errorf("x and true = %s", got)
	}
	// x AND false => false
	got = foldExpr(&plan.Logic{Op: plan.LogicAnd, Args: []plan.Expr{colRef, fls}})
	if lit, ok := got.(*plan.Lit); !ok || lit.Val.Bool() {
		t.Errorf("x and false = %s", got)
	}
	// x OR true => true
	got = foldExpr(&plan.Logic{Op: plan.LogicOr, Args: []plan.Expr{colRef, tru}})
	if lit, ok := got.(*plan.Lit); !ok || !lit.Val.Bool() {
		t.Errorf("x or true = %s", got)
	}
	// NOT NOT x => x
	got = foldExpr(&plan.Logic{Op: plan.LogicNot, Args: []plan.Expr{
		&plan.Logic{Op: plan.LogicNot, Args: []plan.Expr{colRef}}}})
	if got.String() != "b" {
		t.Errorf("not not x = %s", got)
	}
	// NOT (a < b) => a >= b
	cmp := &plan.Cmp{Op: plan.CmpLt,
		L: &plan.ColRef{Name: "x", Idx: 0, Typ: storage.TInt},
		R: &plan.Lit{Val: storage.IntValue(5)}}
	got = foldExpr(&plan.Logic{Op: plan.LogicNot, Args: []plan.Expr{cmp}})
	if got.String() != "(>= x 5)" {
		t.Errorf("negated compare = %s", got)
	}
}

// TestFoldInsidePlans verifies fold runs through Filter and Project nodes
// and that folded plans still execute.
func TestFoldInsidePlans(t *testing.T) {
	n := compile(t, `(project (select (table flights) (and (> distance (+ 200 300)) true))
		(m market) (k (* 2 3)))`)
	o := DefaultOptions()
	o.MaxDOP = 1
	folded := Logical(n, o)
	got := plan.Format(folded)
	if !strings.Contains(got, "(> distance 500)") {
		t.Errorf("arith inside predicate should fold:\n%s", got)
	}
	if !strings.Contains(got, "k=6") {
		t.Errorf("projection constant should fold:\n%s", got)
	}
	if _, err := exec.Run(context.Background(), folded); err != nil {
		t.Fatal(err)
	}
}
