// Package opt implements the TDE's rule-based optimizer (Sect. 4.1.2 and
// 4.2): property derivation (sortedness, uniqueness), classic rewrites
// (constant folding, predicate simplification, filter push-down, column
// pruning, join culling), encoding-aware rewrites (RLE index-range scans,
// Sect. 4.3), and bottom-up parallel plan generation with the Exchange
// operator, local/global aggregation and range-partitioned aggregation
// (Sect. 4.2.2-4.2.3).
package opt

import (
	"vizq/internal/tde/plan"
)

// Ordering derives the output sort order of a node as a list of column
// ordinals (major first, all ascending — table sort keys are ascending).
// An empty slice means no known order. Property derivation follows
// Sect. 4.2.4: sorting is tracked; the Exchange operator disturbs it.
func Ordering(n plan.Node) []int {
	switch x := n.(type) {
	case *plan.Scan:
		// The table order maps to output ordinals only while the sort-key
		// columns are projected in prefix order.
		var out []int
		for _, key := range x.Table.SortKey {
			ti := x.Table.ColumnIndex(key)
			found := -1
			for oi, ci := range x.ColIdxs {
				if ci == ti {
					found = oi
					break
				}
			}
			if found < 0 {
				break
			}
			out = append(out, found)
		}
		return out
	case *plan.Filter:
		return Ordering(x.Child)
	case *plan.Project:
		child := Ordering(x.Child)
		var out []int
		for _, c := range child {
			found := -1
			for oi, e := range x.Exprs {
				if cr, ok := e.(*plan.ColRef); ok && cr.Idx == c {
					found = oi
					break
				}
			}
			if found < 0 {
				break
			}
			out = append(out, found)
		}
		return out
	case *plan.Join:
		// Hash join preserves probe (left) order.
		return Ordering(x.Left)
	case *plan.Sort:
		var out []int
		for _, k := range x.Keys {
			if k.Desc {
				break
			}
			out = append(out, k.Col)
		}
		return out
	case *plan.Limit:
		return Ordering(x.Child)
	case *plan.Shared:
		return Ordering(x.Child)
	case *plan.Exchange:
		// An order-preserving (merging) exchange keeps its keys' order.
		var out []int
		for _, k := range x.MergeKeys {
			if k.Desc {
				break
			}
			out = append(out, k.Col)
		}
		return out
	}
	// Aggregate, TopN, plain Exchange: no derived order.
	return nil
}

// GroupedBy reports whether the node's output rows arrive grouped by the
// given column set: true when the first len(cols) columns of the derived
// ordering are a permutation of cols (sorting is a sufficient condition for
// grouping, Sect. 4.2.4).
func GroupedBy(n plan.Node, cols []int) bool {
	if len(cols) == 0 {
		return false
	}
	ord := Ordering(n)
	if len(ord) < len(cols) {
		return false
	}
	want := make(map[int]bool, len(cols))
	for _, c := range cols {
		want[c] = true
	}
	for _, o := range ord[:len(cols)] {
		if !want[o] {
			return false
		}
	}
	return true
}

// Unique reports whether the given output columns form a unique key of the
// node's result. Used by join culling: an n:1 join against a unique key
// cannot duplicate or drop probe rows (for left joins; inner joins
// additionally rely on referential integrity).
func Unique(n plan.Node, cols []int) bool {
	switch x := n.(type) {
	case *plan.Scan:
		names := make([]string, 0, len(cols))
		for _, c := range cols {
			names = append(names, x.Table.Cols[x.ColIdxs[c]].Name)
		}
		return x.Table.HasUniqueKey(names)
	case *plan.Filter:
		// Removing rows preserves uniqueness.
		return Unique(x.Child, cols)
	case *plan.Project:
		childCols := make([]int, 0, len(cols))
		for _, c := range cols {
			cr, ok := x.Exprs[c].(*plan.ColRef)
			if !ok {
				return false
			}
			childCols = append(childCols, cr.Idx)
		}
		return Unique(x.Child, childCols)
	case *plan.Aggregate:
		// The group-by columns are unique in the output by construction.
		if len(x.GroupBy) == 0 {
			return false
		}
		covered := 0
		for _, c := range cols {
			if c < len(x.GroupBy) {
				covered++
			}
		}
		return covered == len(x.GroupBy)
	case *plan.Shared:
		return Unique(x.Child, cols)
	}
	return false
}

// traceToScan follows a column ordinal down through Filter/Project chains to
// the underlying Scan, returning the scan and the table column index. It
// fails (ok=false) when the column is computed or the chain contains other
// operators.
func traceToScan(n plan.Node, col int) (*plan.Scan, int, bool) {
	switch x := n.(type) {
	case *plan.Scan:
		if col < 0 || col >= len(x.ColIdxs) {
			return nil, 0, false
		}
		return x, x.ColIdxs[col], true
	case *plan.Filter:
		return traceToScan(x.Child, col)
	case *plan.Project:
		cr, ok := x.Exprs[col].(*plan.ColRef)
		if !ok {
			return nil, 0, false
		}
		return traceToScan(x.Child, cr.Idx)
	}
	return nil, 0, false
}

// EstimateRows approximates the node's output cardinality from table
// metadata, with crude selectivity guesses for filters.
func EstimateRows(n plan.Node) int64 {
	switch x := n.(type) {
	case *plan.Scan:
		if x.Ranges != nil {
			var total int64
			for _, r := range x.Ranges {
				total += r.To - r.From
			}
			return total
		}
		return x.Table.Rows
	case *plan.Filter:
		est := EstimateRows(x.Child) / 3
		if est < 1 {
			est = 1
		}
		return est
	case *plan.Project:
		return EstimateRows(x.Child)
	case *plan.Join:
		return EstimateRows(x.Left)
	case *plan.Aggregate:
		child := EstimateRows(x.Child)
		if len(x.GroupBy) == 0 {
			return 1
		}
		distinct := int64(1)
		for _, g := range x.GroupBy {
			if sc, ti, ok := traceToScan(x.Child, g); ok {
				d := sc.Table.Cols[ti].Stats.Distinct
				if d > 0 {
					distinct *= d
				}
			} else {
				distinct *= 100
			}
			if distinct > child {
				return child
			}
		}
		return distinct
	case *plan.Sort, *plan.Shared:
		return EstimateRows(n.Children()[0])
	case *plan.TopN:
		return int64(x.N)
	case *plan.Limit:
		return int64(x.N)
	case *plan.Exchange:
		var total int64
		for _, c := range x.Inputs {
			total += EstimateRows(c)
		}
		return total
	}
	return 1000
}

// costAbove computes the per-row expression work of the flow operators in
// the chain above the scan (the template of a parallel region), using the
// empirical cost profile (Sect. 4.2.2).
func costAbove(n plan.Node) float64 {
	switch x := n.(type) {
	case *plan.Scan:
		return 1
	case *plan.Filter:
		return costAbove(x.Child) + plan.ExprCost(x.Pred)
	case *plan.Project:
		c := costAbove(x.Child)
		for _, e := range x.Exprs {
			c += plan.ExprCost(e)
		}
		return c
	case *plan.Join:
		return costAbove(x.Left) + 3
	case *plan.Aggregate:
		return costAbove(x.Child) + float64(2+len(x.Aggs))
	}
	return 1
}
