package opt

import (
	"context"
	"strings"
	"testing"

	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
	"vizq/internal/tde/tql"
	"vizq/internal/workload"
)

var testDB *storage.Database

func db(t testing.TB) *storage.Database {
	if testDB == nil {
		d, err := workload.BuildFlightsDB(workload.DefaultFlightsConfig())
		if err != nil {
			t.Fatal(err)
		}
		testDB = d
	}
	return testDB
}

func compile(t testing.TB, src string) plan.Node {
	t.Helper()
	n, err := tql.Compile(src, db(t), tql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func forcedParallel() Options {
	o := DefaultOptions()
	o.MaxDOP = 4
	o.GrainWork = 1
	return o
}

// TestParallelPlanShapes reproduces Fig. 3: Exchange placement for flow
// operators (which inherit parallelism) vs stop-and-go operators (which
// close the region).
func TestParallelPlanShapes(t *testing.T) {
	// Flow-only pipeline: select+project parallelize per fraction; a single
	// Exchange closes the plan at the root.
	n := compile(t, `(project (select (table flights) (> delay 10.0)) (m market))`)
	got := plan.Format(Optimize(n, forcedParallel()))
	if !strings.HasPrefix(got, "exchange 4\n") {
		t.Fatalf("root should be exchange 4:\n%s", got)
	}
	if strings.Count(got, "project") != 4 || strings.Count(got, "select") != 4 {
		t.Errorf("flow operators should be cloned per fraction:\n%s", got)
	}
	if strings.Count(got, "part 0/4") != 1 || strings.Count(got, "part 3/4") != 1 {
		t.Errorf("scan fractions missing:\n%s", got)
	}

	// Stop-and-go at the root: Order closes parallelism below itself.
	n = compile(t, `(order (select (table flights) (> delay 10.0)) (asc market))`)
	got = plan.Format(Optimize(n, forcedParallel()))
	if !strings.HasPrefix(got, "order") {
		t.Fatalf("root should be the serial order:\n%s", got)
	}
	if !strings.Contains(got, "exchange 4") {
		t.Errorf("order input should be an exchange:\n%s", got)
	}
}

// TestLocalGlobalAggPlanShape reproduces Fig. 5: per-fraction local
// aggregation feeding an Exchange feeding the global aggregation.
func TestLocalGlobalAggPlanShape(t *testing.T) {
	n := compile(t, `(aggregate (table flights) (groupby carrier) (aggs (n count *) (s sum distance)))`)
	got := plan.Format(Optimize(n, forcedParallel()))
	if !strings.HasPrefix(got, "aggregate global") {
		t.Fatalf("root should be global aggregate:\n%s", got)
	}
	if strings.Count(got, "aggregate local") != 4 {
		t.Errorf("want 4 local aggregates:\n%s", got)
	}
	if !strings.Contains(got, "exchange 4") {
		t.Errorf("missing exchange:\n%s", got)
	}
	// The global phase merges partial counts by summing.
	if !strings.Contains(got, "n=sum(n)") {
		t.Errorf("global phase should sum partial counts:\n%s", got)
	}
}

// TestParallelJoinPlanShape reproduces Fig. 4: the left (fact) side of the
// join participates in the main parallelism, the right side is an
// independent unit materialized once and shared across the probing clones.
func TestParallelJoinPlanShape(t *testing.T) {
	n := compile(t, `
		(aggregate
			(join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))
			(groupby airline_name) (aggs (n count *)))`)
	got := plan.Format(Optimize(n, forcedParallel()))
	if strings.Count(got, "join inner") != 4 {
		t.Errorf("join should be cloned per fraction:\n%s", got)
	}
	if strings.Count(got, "shared-table #1") != 4 {
		t.Errorf("all clones must reference the same shared table:\n%s", got)
	}
	// The shared subtree is printed once.
	if strings.Count(got, "scan Extract.carriers") != 1 {
		t.Errorf("the dimension should be scanned once:\n%s", got)
	}
	if strings.Count(got, "scan Extract.flights") != 4 {
		t.Errorf("the fact should be scanned in 4 fractions:\n%s", got)
	}
}

// TestRangePartitionPlanShape verifies the Sect. 4.2.3 optimization: when
// the group-by is a prefix of the sort order, the plan has no global
// aggregate — every partition aggregates its own groups completely.
func TestRangePartitionPlanShape(t *testing.T) {
	n := compile(t, `(aggregate (table flights) (groupby date) (aggs (n count *)))`)
	got := plan.Format(Optimize(n, forcedParallel()))
	if !strings.HasPrefix(got, "exchange") {
		t.Fatalf("root should be the exchange (no global phase):\n%s", got)
	}
	if strings.Contains(got, "global") || strings.Contains(got, "local") {
		t.Errorf("range partitioning should not use local/global:\n%s", got)
	}
	if !strings.Contains(got, "range-part") {
		t.Errorf("scans should carry range partitions:\n%s", got)
	}
	// Partitions of a sorted table stay sorted: streaming applies inside.
	if !strings.Contains(got, "streaming") {
		t.Errorf("partition aggregates should stream:\n%s", got)
	}

	// Group-by (date, hour) covers the full sort key; still applicable.
	n = compile(t, `(aggregate (table flights) (groupby hour date) (aggs (n count *)))`)
	got = plan.Format(Optimize(n, forcedParallel()))
	if strings.Contains(got, "global") {
		t.Errorf("permutation of sort prefix should range-partition:\n%s", got)
	}

	// Group-by hour alone is NOT a sort prefix: local/global expected.
	n = compile(t, `(aggregate (table flights) (groupby hour) (aggs (n count *)))`)
	got = plan.Format(Optimize(n, forcedParallel()))
	if !strings.Contains(got, "aggregate global") {
		t.Errorf("non-prefix group-by must use local/global:\n%s", got)
	}

	// Disabling the optimization falls back to local/global.
	o := forcedParallel()
	o.DisableRangePartition = true
	n = compile(t, `(aggregate (table flights) (groupby date) (aggs (n count *)))`)
	got = plan.Format(Optimize(n, o))
	if !strings.Contains(got, "aggregate global") {
		t.Errorf("disabled range partitioning should use local/global:\n%s", got)
	}
}

func TestAvgDecomposition(t *testing.T) {
	n := compile(t, `(aggregate (table flights) (groupby carrier) (aggs (a avg delay)))`)
	optimized := Optimize(n, forcedParallel())
	got := plan.Format(optimized)
	if !strings.HasPrefix(got, "project") {
		t.Fatalf("avg should finish with a projection:\n%s", got)
	}
	if !strings.Contains(got, "$sum_a") || !strings.Contains(got, "$cnt_a") {
		t.Errorf("avg partials missing:\n%s", got)
	}
	// Schema preserved: carrier, a.
	sch := optimized.Schema()
	if len(sch) != 2 || sch[1].Name != "a" || sch[1].Type != storage.TFloat {
		t.Errorf("schema = %+v", sch)
	}
}

func TestCountDistinctForcesSerialMerge(t *testing.T) {
	n := compile(t, `(aggregate (table flights) (groupby carrier) (aggs (d countd market)))`)
	got := plan.Format(Optimize(n, forcedParallel()))
	if !strings.HasPrefix(got, "aggregate") || strings.Contains(got, "local") {
		t.Fatalf("countd should aggregate serially above the exchange:\n%s", got)
	}
	if !strings.Contains(got, "exchange") {
		t.Errorf("scan should still parallelize below:\n%s", got)
	}
}

func TestFilterPushdownThroughJoin(t *testing.T) {
	n := compile(t, `
		(select
			(join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))
			(and (> distance 500) (= airline_name "Southwest Airlines")))`)
	got := plan.Format(Logical(n, DefaultOptions()))
	// Both conjuncts move below the join, onto their own sides.
	joinLine := strings.Index(got, "join")
	distLine := strings.Index(got, "(> distance 500)")
	nameLine := strings.Index(got, `(= airline_name "Southwest Airlines")`)
	if joinLine < 0 || distLine < joinLine || nameLine < joinLine {
		t.Errorf("conjuncts should be pushed below the join:\n%s", got)
	}
}

func TestFilterPushdownThroughProject(t *testing.T) {
	n := compile(t, `
		(select (project (table flights) (m market) (d (* distance 2))) (> d 1000))`)
	got := plan.Format(Logical(n, DefaultOptions()))
	if !strings.HasPrefix(got, "project") {
		t.Errorf("filter should slide below project:\n%s", got)
	}
	if !strings.Contains(got, "(* distance 2)") {
		t.Errorf("predicate should be rewritten in scan terms:\n%s", got)
	}
}

func TestJoinCulling(t *testing.T) {
	// The carriers dimension contributes nothing: the join disappears.
	n := compile(t, `
		(aggregate
			(join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))
			(groupby market) (aggs (n count *)))`)
	got := plan.Format(Logical(n, DefaultOptions()))
	if strings.Contains(got, "join") {
		t.Errorf("n:1 join with unused right side should be culled:\n%s", got)
	}

	// Needed right key columns alias the left key: still cullable.
	n = compile(t, `
		(aggregate
			(join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))
			(groupby carriers.carrier) (aggs (n count *)))`)
	got = plan.Format(Logical(n, DefaultOptions()))
	if strings.Contains(got, "join") {
		t.Errorf("right-key-only references should alias to the left key:\n%s", got)
	}

	// Without referential integrity the inner join must stay.
	o := DefaultOptions()
	o.AssumeReferentialIntegrity = false
	n = compile(t, `
		(aggregate
			(join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))
			(groupby market) (aggs (n count *)))`)
	got = plan.Format(Logical(n, o))
	if !strings.Contains(got, "join") {
		t.Errorf("culling inner joins requires the RI assumption:\n%s", got)
	}

	// A join whose right columns are used cannot be culled.
	n = compile(t, `
		(aggregate
			(join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))
			(groupby airline_name) (aggs (n count *)))`)
	got = plan.Format(Logical(n, DefaultOptions()))
	if !strings.Contains(got, "join") {
		t.Errorf("join with referenced right columns must remain:\n%s", got)
	}
}

func TestJoinCullingPreservesResults(t *testing.T) {
	src := `
		(aggregate
			(join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))
			(groupby market) (aggs (n count *)))`
	n := compile(t, src)
	culled, err := exec.Run(context.Background(), Logical(n, DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.AssumeReferentialIntegrity = false
	n2 := compile(t, src)
	kept, err := exec.Run(context.Background(), Logical(n2, o))
	if err != nil {
		t.Fatal(err)
	}
	if culled.N != kept.N {
		t.Fatalf("culled %d rows vs %d", culled.N, kept.N)
	}
}

func TestColumnPruning(t *testing.T) {
	n := compile(t, `(aggregate (table flights) (groupby carrier) (aggs (n count *)))`)
	got := plan.Format(Logical(n, DefaultOptions()))
	if !strings.Contains(got, "scan Extract.flights [carrier]") {
		t.Errorf("scan should project only carrier:\n%s", got)
	}
}

func TestDomainSimplification(t *testing.T) {
	// distance >= 0 is always true (min is 150, no nulls): filter vanishes.
	n := compile(t, `(select (table flights) (>= distance 0))`)
	got := plan.Format(Logical(n, DefaultOptions()))
	if strings.Contains(got, "select") {
		t.Errorf("always-true filter should be removed:\n%s", got)
	}
	// distance > 1e9 is a contradiction: predicate folds to false.
	n = compile(t, `(select (table flights) (> distance 1000000000))`)
	got = plan.Format(Logical(n, DefaultOptions()))
	if !strings.Contains(got, "select false") {
		t.Errorf("contradiction should fold to false:\n%s", got)
	}
	// delay >= -1000 is always true by domain but delay has nulls: the
	// filter must stay (it removes null rows).
	n = compile(t, `(select (table flights) (>= delay -1000.0))`)
	got = plan.Format(Logical(n, DefaultOptions()))
	if !strings.Contains(got, "select") {
		t.Errorf("nullable column filters must not be removed:\n%s", got)
	}
}

func TestConstantFolding(t *testing.T) {
	n := compile(t, `(select (table flights) (and (> distance 500) (= 1 1)))`)
	got := plan.Format(Logical(n, DefaultOptions()))
	if strings.Contains(got, "(= 1 1)") {
		t.Errorf("constant conjunct should fold away:\n%s", got)
	}
	n = compile(t, `(select (table flights) (or (> distance 500) (= 1 1)))`)
	got = plan.Format(Logical(n, DefaultOptions()))
	if strings.Contains(got, "select") {
		t.Errorf("or-with-true should remove the filter:\n%s", got)
	}
}

func TestStreamingAggregateMarking(t *testing.T) {
	// date is the sort-key prefix: streaming applies.
	n := compile(t, `(aggregate (table flights) (groupby date) (aggs (n count *)))`)
	o := DefaultOptions()
	o.MaxDOP = 1
	got := plan.Format(Logical(n, o))
	if !strings.Contains(got, "streaming") {
		t.Errorf("sorted input should stream:\n%s", got)
	}
	// carrier is not: hash aggregation.
	n = compile(t, `(aggregate (table flights) (groupby carrier) (aggs (n count *)))`)
	got = plan.Format(Logical(n, o))
	if strings.Contains(got, "streaming") {
		t.Errorf("unsorted input cannot stream:\n%s", got)
	}
}

func TestOrderingProperty(t *testing.T) {
	n := compile(t, `(table flights)`)
	ord := Ordering(n)
	if len(ord) != 2 || ord[0] != 0 || ord[1] != 1 {
		t.Errorf("ordering = %v (want [0 1] for date,hour)", ord)
	}
	// Projection that keeps date only preserves a one-column prefix.
	n = compile(t, `(project (table flights) (d date) (m market))`)
	ord = Ordering(n)
	if len(ord) != 1 || ord[0] != 0 {
		t.Errorf("projected ordering = %v", ord)
	}
}

func TestUniqueProperty(t *testing.T) {
	n := compile(t, `(table carriers)`)
	if !Unique(n, []int{0}) {
		t.Error("carrier should be unique in the dimension")
	}
	if Unique(n, []int{1}) {
		t.Error("airline_name is not declared unique")
	}
	n = compile(t, `(aggregate (table flights) (groupby carrier) (aggs (n count *)))`)
	if !Unique(n, []int{0}) {
		t.Error("group-by output should be unique on group columns")
	}
}

func TestEstimateRows(t *testing.T) {
	n := compile(t, `(table flights)`)
	if got := EstimateRows(n); got != int64(workload.DefaultFlightsConfig().Rows) {
		t.Errorf("rows = %d", got)
	}
	n = compile(t, `(topn (table flights) 5 (asc date))`)
	if got := EstimateRows(n); got != 5 {
		t.Errorf("topn rows = %d", got)
	}
}
