package opt

import (
	"fmt"

	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// regionInfo describes an open parallel region during bottom-up plan
// generation: the subtree built so far is a template whose (single) main
// scan will be fractioned across clones when the region closes.
type regionInfo struct {
	rows int64   // estimated rows flowing through the region
	cost float64 // per-row expression work (empirical cost profile)
	scan *plan.Scan
}

// Parallelize transforms a serial plan into a parallel plan by determining
// the degree of parallelism bottom-up and inserting Exchange operators
// (Sect. 4.2.2). Flow operators inherit their child's parallelism;
// stop-and-go operators close the region — via local/global aggregation or
// range-partitioned aggregation where applicable (Sect. 4.2.3).
func Parallelize(n plan.Node, o Options) plan.Node {
	if o.MaxDOP <= 1 {
		return n
	}
	p := &parallelizer{o: o}
	out, region := p.walk(n)
	if region != nil {
		out = p.closeRegion(out, region)
	}
	return out
}

type parallelizer struct {
	o        Options
	sharedID int
}

func (p *parallelizer) dopFor(r *regionInfo) int {
	work := float64(r.rows) * r.cost
	dop := int(work / p.o.GrainWork)
	if dop > p.o.MaxDOP {
		dop = p.o.MaxDOP
	}
	// Partitions below the minimum fraction size are not worth a thread
	// (the TableScan decision "to partition the table into N fractions"
	// consults the data volume metadata, Sect. 4.2.2).
	if p.o.MinPartitionRows > 0 {
		if byRows := r.rows / p.o.MinPartitionRows; int64(dop) > byRows {
			dop = int(byRows)
		}
	}
	if int64(dop) > r.rows {
		dop = int(r.rows)
	}
	if dop < 1 {
		dop = 1
	}
	return dop
}

// closeRegion terminates an open region: clone the template per fraction
// and merge with an Exchange. Everything above runs serial (the Tableau 9.0
// Exchange has one output).
func (p *parallelizer) closeRegion(template plan.Node, r *regionInfo) plan.Node {
	dop := p.dopFor(r)
	if dop <= 1 {
		return template
	}
	inputs := make([]plan.Node, dop)
	for i := 0; i < dop; i++ {
		idx := i
		inputs[i] = cloneScans(template, func(s *plan.Scan) *plan.Scan {
			c := *s
			c.Part = plan.Partition{Index: idx, Count: dop}
			return &c
		})
	}
	return &plan.Exchange{Inputs: inputs}
}

// cloneScans deep-copies a template, rewriting each non-shared scan with f.
// Shared subtrees keep pointer identity so all clones reference the same
// materialized table.
func cloneScans(n plan.Node, f func(*plan.Scan) *plan.Scan) plan.Node {
	switch x := n.(type) {
	case *plan.Scan:
		return f(x)
	case *plan.Shared:
		return x
	default:
		ch := n.Children()
		newCh := make([]plan.Node, len(ch))
		for i, c := range ch {
			newCh[i] = cloneScans(c, f)
		}
		return n.WithChildren(newCh)
	}
}

// walk returns the (possibly templated) subtree and its open region, nil if
// the subtree is closed/serial.
func (p *parallelizer) walk(n plan.Node) (plan.Node, *regionInfo) {
	switch x := n.(type) {
	case *plan.Scan:
		if x.Part.Count > 0 {
			return x, nil // already partitioned
		}
		return x, &regionInfo{rows: EstimateRows(x), cost: 1, scan: x}

	case *plan.Filter:
		child, r := p.walk(x.Child)
		out := &plan.Filter{Child: child, Pred: x.Pred}
		if r == nil {
			return out, nil
		}
		// The region keeps the scanned volume: the fraction decision is
		// about how much data each thread reads, not post-filter rows.
		r.cost += plan.ExprCost(x.Pred)
		return out, r

	case *plan.Project:
		child, r := p.walk(x.Child)
		out := &plan.Project{Child: child, Exprs: x.Exprs, Names: x.Names}
		if r == nil {
			return out, nil
		}
		for _, e := range x.Exprs {
			r.cost += plan.ExprCost(e)
		}
		return out, r

	case *plan.Join:
		// The left (fact) sub-tree participates in the main parallelism; the
		// right sub-tree forms an independent parallel unit whose result is
		// shared between threads (Sect. 4.2.2, Fig. 4).
		left, r := p.walk(x.Left)
		right := Parallelize(x.Right, p.o)
		if r == nil {
			return &plan.Join{Left: left, Right: right, Kind: x.Kind, LKeys: x.LKeys, RKeys: x.RKeys}, nil
		}
		p.sharedID++
		shared := &plan.Shared{Child: right, ID: p.sharedID}
		out := &plan.Join{Left: left, Right: shared, Kind: x.Kind, LKeys: x.LKeys, RKeys: x.RKeys}
		r.cost += 3
		return out, r

	case *plan.Aggregate:
		return p.walkAggregate(x)

	case *plan.TopN:
		child, r := p.walk(x.Child)
		if r == nil {
			return &plan.TopN{Child: child, N: x.N, Keys: x.Keys}, nil
		}
		dop := p.dopFor(r)
		if dop <= 1 {
			return &plan.TopN{Child: child, N: x.N, Keys: x.Keys}, nil
		}
		// Local/global TopN: each fraction keeps its top N, the global
		// operator re-ranks the survivors (Sect. 4.2.3 applies the
		// local/global approach to TopN as well).
		local := &plan.TopN{Child: child, N: x.N, Keys: x.Keys, Mode: plan.AggLocal}
		merged := p.closeRegion(local, r)
		return &plan.TopN{Child: merged, N: x.N, Keys: x.Keys, Mode: plan.AggGlobal}, nil

	case *plan.Sort:
		child, r := p.walk(x.Child)
		if r == nil {
			return &plan.Sort{Child: child, Keys: x.Keys}, nil
		}
		if p.o.EnableOrderPreservingExchange {
			if dop := p.dopFor(r); dop > 1 {
				// Sort each fraction, then k-way merge: the serial sort above
				// the exchange disappears.
				local := &plan.Sort{Child: child, Keys: x.Keys}
				merged := p.closeRegion(local, r)
				if ex, ok := merged.(*plan.Exchange); ok {
					ex.MergeKeys = x.Keys
					return ex, nil
				}
				return merged, nil
			}
		}
		child = p.closeRegion(child, r)
		return &plan.Sort{Child: child, Keys: x.Keys}, nil

	case *plan.Limit:
		child, r := p.walk(x.Child)
		if r != nil {
			child = p.closeRegion(child, r)
		}
		return &plan.Limit{Child: child, N: x.N}, nil
	}
	return n, nil
}

func (p *parallelizer) walkAggregate(a *plan.Aggregate) (plan.Node, *regionInfo) {
	child, r := p.walk(a.Child)
	serial := a.WithChildren([]plan.Node{child}).(*plan.Aggregate)
	if r == nil {
		return serial, nil
	}
	r.cost += float64(2 + len(a.Aggs))
	dop := p.dopFor(r)
	if dop <= 1 {
		return serial, nil
	}

	// Range-partitioned aggregation (Sect. 4.2.3, Lemmas 1-3): when a
	// permutation of a subset of the group-by columns is a prefix of the
	// table's sort order, partitioning at group boundaries makes the global
	// phase redundant and the whole aggregation runs in parallel.
	if !p.o.DisableRangePartition {
		if out, ok := p.tryRangePartition(a, child, r, dop); ok {
			return out, nil
		}
	}

	// COUNTD cannot be merged from partials; close the region below the
	// aggregate and aggregate serially.
	if hasCountD(a) {
		merged := p.closeRegion(child, r)
		return a.WithChildren([]plan.Node{merged}), nil
	}

	// Local/global aggregation (Fig. 5): partial aggregation per fraction
	// reduces the data entering the Exchange, then a global phase merges.
	return p.localGlobal(a, child, r), nil
}

// tryRangePartition attempts the Exchange-free parallel aggregation.
func (p *parallelizer) tryRangePartition(a *plan.Aggregate, template plan.Node, r *regionInfo, dop int) (plan.Node, bool) {
	scan := r.scan
	if scan == nil || scan.Ranges != nil {
		return nil, false
	}
	// Map group-by ordinals to scan table columns.
	names := make([]string, 0, len(a.GroupBy))
	for _, g := range a.GroupBy {
		sc, ti, ok := traceToScan(template, g)
		if !ok || sc != scan {
			return nil, false
		}
		names = append(names, scan.Table.Cols[ti].Name)
	}
	prefix := scan.Table.SortPrefix(names)
	if prefix == 0 {
		return nil, false
	}
	// Conservative application (skew / low cardinality concerns): require
	// enough distinct leading values to balance the partitions.
	lead := scan.Table.Column(scan.Table.SortKey[0])
	if lead == nil || lead.Stats.Distinct < int64(dop) {
		return nil, false
	}
	bounds := groupAlignedBounds(scan.Table, prefix, dop)
	if len(bounds) < 3 { // fewer than 2 partitions
		return nil, false
	}
	inputs := make([]plan.Node, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		rng := plan.RowRange{From: bounds[i], To: bounds[i+1]}
		cloned := cloneScans(template, func(s *plan.Scan) *plan.Scan {
			c := *s
			c.Ranges = []plan.RowRange{rng}
			c.IndexNote = "range-part"
			return &c
		})
		part := a.WithChildren([]plan.Node{cloned}).(*plan.Aggregate)
		// Each fraction is a contiguous sorted range, so streaming still
		// applies inside the partition when the input is grouped.
		part.Streaming = a.Streaming || GroupedBy(cloned, part.GroupBy)
		inputs = append(inputs, part)
	}
	return &plan.Exchange{Inputs: inputs}, true
}

// groupAlignedBounds picks dop row boundaries aligned to changes of the
// leading `prefix` sort columns, so every group lands in exactly one
// partition (Lemma 2).
func groupAlignedBounds(t *storage.Table, prefix, dop int) []int64 {
	cols := make([]*storage.Column, prefix)
	for i := 0; i < prefix; i++ {
		cols[i] = t.Column(t.SortKey[i])
	}
	samePrefix := func(a, b int64) bool {
		for _, c := range cols {
			if !storage.Equal(c.Value(int(a)), c.Value(int(b)), c.Coll) {
				return false
			}
		}
		return true
	}
	bounds := []int64{0}
	for i := 1; i < dop; i++ {
		cand := t.Rows * int64(i) / int64(dop)
		for cand < t.Rows && cand > 0 && samePrefix(cand-1, cand) {
			cand++
		}
		if cand > bounds[len(bounds)-1] && cand < t.Rows {
			bounds = append(bounds, cand)
		}
	}
	bounds = append(bounds, t.Rows)
	return bounds
}

// localGlobal builds the two-phase parallel aggregation, decomposing AVG
// into SUM and COUNT partials merged and divided at the top.
func (p *parallelizer) localGlobal(a *plan.Aggregate, template plan.Node, r *regionInfo) plan.Node {
	nG := len(a.GroupBy)

	local := &plan.Aggregate{Child: template, GroupBy: a.GroupBy, Mode: plan.AggLocal}
	local.Streaming = GroupedBy(template, a.GroupBy)
	type finalSrc struct {
		avg      bool
		sumCol   int // global output ordinal of the sum partial
		countCol int // global output ordinal of the count partial (avg only)
	}
	var srcs []finalSrc
	var globalAggs []plan.AggSpec
	addPartial := func(fn plan.AggFn, arg int, name string, mergeFn plan.AggFn) int {
		local.Aggs = append(local.Aggs, plan.AggSpec{Fn: fn, ArgIdx: arg, Name: name})
		partialCol := nG + len(local.Aggs) - 1
		globalAggs = append(globalAggs, plan.AggSpec{Fn: mergeFn, ArgIdx: partialCol, Name: name})
		return nG + len(globalAggs) - 1
	}
	for _, spec := range a.Aggs {
		switch spec.Fn {
		case plan.AggCount:
			col := addPartial(plan.AggCount, spec.ArgIdx, spec.Name, plan.AggSum)
			srcs = append(srcs, finalSrc{sumCol: col})
		case plan.AggSum:
			col := addPartial(plan.AggSum, spec.ArgIdx, spec.Name, plan.AggSum)
			srcs = append(srcs, finalSrc{sumCol: col})
		case plan.AggMin:
			col := addPartial(plan.AggMin, spec.ArgIdx, spec.Name, plan.AggMin)
			srcs = append(srcs, finalSrc{sumCol: col})
		case plan.AggMax:
			col := addPartial(plan.AggMax, spec.ArgIdx, spec.Name, plan.AggMax)
			srcs = append(srcs, finalSrc{sumCol: col})
		case plan.AggAvg:
			s := addPartial(plan.AggSum, spec.ArgIdx, fmt.Sprintf("$sum_%s", spec.Name), plan.AggSum)
			c := addPartial(plan.AggCount, spec.ArgIdx, fmt.Sprintf("$cnt_%s", spec.Name), plan.AggSum)
			srcs = append(srcs, finalSrc{avg: true, sumCol: s, countCol: c})
		}
	}

	merged := p.closeRegion(local, r)
	global := &plan.Aggregate{Child: merged, Mode: plan.AggGlobal, Aggs: globalAggs}
	for i := 0; i < nG; i++ {
		global.GroupBy = append(global.GroupBy, i)
	}

	needsProject := false
	for _, s := range srcs {
		if s.avg {
			needsProject = true
		}
	}
	if !needsProject {
		return global
	}
	// Final projection: pass groups through, divide AVG partials.
	gSchema := global.Schema()
	proj := &plan.Project{Child: global}
	for i := 0; i < nG; i++ {
		proj.Exprs = append(proj.Exprs, &plan.ColRef{Name: gSchema[i].Name, Idx: i, Typ: gSchema[i].Type, Coll: gSchema[i].Coll})
		proj.Names = append(proj.Names, gSchema[i].Name)
	}
	for k, s := range srcs {
		name := a.Aggs[k].Name
		if !s.avg {
			proj.Exprs = append(proj.Exprs, &plan.ColRef{Name: gSchema[s.sumCol].Name, Idx: s.sumCol, Typ: gSchema[s.sumCol].Type, Coll: gSchema[s.sumCol].Coll})
			proj.Names = append(proj.Names, name)
			continue
		}
		sum := &plan.ColRef{Name: gSchema[s.sumCol].Name, Idx: s.sumCol, Typ: gSchema[s.sumCol].Type}
		cnt := &plan.ColRef{Name: gSchema[s.countCol].Name, Idx: s.countCol, Typ: gSchema[s.countCol].Type}
		proj.Exprs = append(proj.Exprs, &plan.Arith{Op: plan.ArithDiv, L: sum, R: cnt, Typ: storage.TFloat})
		proj.Names = append(proj.Names, name)
	}
	return proj
}
