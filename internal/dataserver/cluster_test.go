package dataserver

import (
	"testing"
	"time"

	"vizq/internal/core"
	"vizq/internal/kvstore"
	"vizq/internal/sched"
)

// TestClusterCoordinationWiring pins the Data Server ↔ coordinator
// contract: two servers sharing one kvstore bus publish digests for
// their scheduler-equipped sources, see each other as peers, and drop
// the registration at Unpublish.
func TestClusterCoordinationWiring(t *testing.T) {
	backend := startBackend(t)
	bus := kvstore.NewLocalBus(kvstore.NewStore(0))
	now := time.Unix(1_723_000_000, 0)
	clock := func() time.Time { return now }

	mk := func(node string) *Server {
		return publishFlights(t, backend, Config{
			PipelineOptions: core.DefaultOptions(),
			Scheduler:       &sched.Config{},
			Cluster:         &sched.ClusterConfig{Node: node, Bus: bus, Clock: clock},
		})
	}
	a, b := mk("node-a"), mk("node-b")
	ca, cb := a.Coordinator(), b.Coordinator()
	if ca == nil || cb == nil {
		t.Fatal("cluster-configured servers must have coordinators")
	}
	if ca.Node() != "node-a" {
		t.Fatalf("node id = %q", ca.Node())
	}

	ca.Step(now)
	cb.Step(now)
	ca.Step(now)
	if peers := ca.Peers("faa flights"); len(peers) != 1 || peers[0].Node != "node-b" {
		t.Fatalf("node-a peers = %+v", peers)
	}
	if st := a.Scheduler("FAA Flights").Stats(); st.ClusterPeers != 1 {
		t.Fatalf("scheduler did not blend the peer: %+v", st)
	}
	if d, ok := ca.LastDigest("faa flights"); !ok || d.Source != "faa flights" {
		t.Fatalf("self digest = %+v ok=%v", d, ok)
	}

	// Unpublish unregisters: the next step publishes nothing for the
	// source, and after the staleness window node-b sees no peers.
	a.Unpublish("FAA Flights")
	if _, ok := ca.LastDigest("faa flights"); ok {
		t.Fatal("unpublished source still registered with the coordinator")
	}
	now = now.Add(time.Second)
	cb.Step(now)
	if peers := cb.Peers("faa flights"); len(peers) != 0 {
		t.Fatalf("node-b still sees unpublished peer: %+v", peers)
	}
}

// TestClusterConfigGates pins the degraded paths: no Cluster config →
// nil coordinator; an incomplete one (missing node id or bus) degrades
// to uncoordinated admission instead of failing the server.
func TestClusterConfigGates(t *testing.T) {
	backend := startBackend(t)
	plain := publishFlights(t, backend, Config{PipelineOptions: core.DefaultOptions()})
	if plain.Coordinator() != nil {
		t.Fatal("coordinator without Cluster config")
	}
	broken := publishFlights(t, backend, Config{
		PipelineOptions: core.DefaultOptions(),
		Scheduler:       &sched.Config{},
		Cluster:         &sched.ClusterConfig{}, // no Node, no Bus
	})
	if broken.Coordinator() != nil {
		t.Fatal("incomplete cluster config must degrade to no coordinator")
	}
	if broken.Scheduler("FAA Flights") == nil {
		t.Fatal("local admission must survive a degraded cluster config")
	}
}
