package dataserver

import (
	"context"
	"testing"

	"vizq/internal/cache"
	"vizq/internal/core"
	"vizq/internal/query"
)

// TestCacheOptionsFlowThrough checks that Config.CacheOptions actually
// sizes the published source's caches: with a 1-entry budget two
// alternating queries evict each other and every request goes to the
// backend, while the default sizing serves the repeats locally.
func TestCacheOptionsFlowThrough(t *testing.T) {
	qa := &query.Query{
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
	qb := &query.Query{
		Dims:     []query.Dim{{Col: "origin"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}

	run := func(cfg Config) int64 {
		backend := startBackend(t)
		s := publishFlights(t, backend, cfg)
		conn, _, err := s.Connect("FAA Flights", "admin")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		ctx := context.Background()
		for i := 0; i < 2; i++ {
			for _, q := range []*query.Query{qa, qb} {
				if _, err := conn.Query(ctx, q.Clone()); err != nil {
					t.Fatal(err)
				}
			}
		}
		return backend.Stats().Queries
	}

	def := run(Config{PipelineOptions: core.DefaultOptions()})
	if def != 2 {
		t.Errorf("default caches: backend saw %d queries, want 2 (repeats cached)", def)
	}
	// With a 1-entry budget the two queries contend for the single slot
	// (which survivor wins depends on cost-aware scoring), so at least one
	// repeat must fall out and go remote again.
	tiny := run(Config{
		PipelineOptions: core.DefaultOptions(),
		CacheOptions:    cache.Options{MaxEntries: 1, Shards: 1},
	})
	if tiny <= def {
		t.Errorf("1-entry caches: backend saw %d queries, want more than the default run's %d", tiny, def)
	}
}
