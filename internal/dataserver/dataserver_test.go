package dataserver

import (
	"context"
	"testing"

	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

func startBackend(t testing.TB) *remote.Server {
	t.Helper()
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 9000, Days: 60, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), remote.Config{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func publishFlights(t testing.TB, backend *remote.Server, cfg Config) *Server {
	t.Helper()
	s := NewServer(cfg)
	err := s.Publish(&PublishedSource{
		Name:    "FAA Flights",
		Backend: backend.Addr(),
		View:    query.View{Table: "flights"},
		Calculations: map[string]string{
			"Weekday":   "(weekday date)",
			"LongHaul":  "(> distance 1500)",
			"DelayBand": "(if (> delay 30.0) \"late\" \"ontime\")",
		},
		UserFilters: map[string][]query.Filter{
			"west_analyst": {query.InFilter("origin", storage.StrValue("LAX"), storage.StrValue("SFO"), storage.StrValue("SEA"))},
		},
		BackendSupportsTempTables: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPublishAndConnect(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{PipelineOptions: core.DefaultOptions()})
	conn, md, err := s.Connect("faa flights", "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if md.Table != "flights" || !md.SupportsTempTables {
		t.Errorf("metadata = %+v", md)
	}
	if len(md.Calculations) != 3 {
		t.Errorf("calculations = %v", md.Calculations)
	}
	if _, _, err := s.Connect("nope", "alice"); err == nil {
		t.Error("connecting to unpublished source should fail")
	}
	if err := s.Publish(&PublishedSource{Name: "FAA Flights", Backend: backend.Addr(), View: query.View{Table: "flights"}}); err == nil {
		t.Error("double publish should fail")
	}
}

func TestSharedCalculation(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{PipelineOptions: core.DefaultOptions()})
	conn, _, err := s.Connect("FAA Flights", "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.Query(context.Background(), &query.Query{
		Dims:     []query.Dim{{Col: "Weekday"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
		View:     query.View{Table: "ignored-by-server"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 || res.N > 7 {
		t.Errorf("weekday groups = %d", res.N)
	}
}

func TestUserFiltersEnforced(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{PipelineOptions: core.DefaultOptions()})
	ctx := context.Background()

	admin, _, err := s.Connect("FAA Flights", "admin")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	analyst, _, err := s.Connect("FAA Flights", "west_analyst")
	if err != nil {
		t.Fatal(err)
	}
	defer analyst.Close()

	q := &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "origin"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
	all, err := admin.Query(ctx, q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := analyst.Query(ctx, q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if restricted.N >= all.N {
		t.Errorf("user filter not applied: %d vs %d origins", restricted.N, all.N)
	}
	if restricted.N == 0 || restricted.N > 3 {
		t.Errorf("analyst should see at most 3 origins, got %d", restricted.N)
	}
	// The analyst cannot widen access via their own filters.
	q2 := q.Clone()
	q2.Filters = []query.Filter{query.InFilter("origin", storage.StrValue("JFK"))}
	none, err := analyst.Query(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	if none.N != 0 {
		t.Error("user filter must intersect, not be replaced")
	}
}

func TestSharedPipelineCache(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{PipelineOptions: core.DefaultOptions()})
	ctx := context.Background()
	q := &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
	c1, _, _ := s.Connect("FAA Flights", "u1")
	defer c1.Close()
	if _, err := c1.Query(ctx, q.Clone()); err != nil {
		t.Fatal(err)
	}
	sent := backend.Stats().Queries
	// A different client issuing the same query hits the shared cache.
	c2, _, _ := s.Connect("FAA Flights", "u2")
	defer c2.Close()
	if _, err := c2.Query(ctx, q.Clone()); err != nil {
		t.Fatal(err)
	}
	if got := backend.Stats().Queries; got != sent {
		t.Errorf("cross-client cache miss: %d -> %d backend queries", sent, got)
	}
}

func TestTempTableLifecycle(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{PipelineOptions: core.DefaultOptions()})
	ctx := context.Background()
	c1, _, _ := s.Connect("FAA Flights", "u1")
	c2, _, _ := s.Connect("FAA Flights", "u2")

	vals := []storage.Value{storage.StrValue("WN"), storage.StrValue("AA"), storage.StrValue("DL")}
	if err := c1.CreateTempTable("myfilter", "carrier", vals); err != nil {
		t.Fatal(err)
	}
	// Identical content from another client shares the definition.
	if err := c2.CreateTempTable("othername", "carrier", vals); err != nil {
		t.Fatal(err)
	}
	if s.SharedTempCount() != 1 {
		t.Errorf("shared defs = %d, want 1", s.SharedTempCount())
	}
	if s.Stats().SharedTempReuses != 1 {
		t.Errorf("reuses = %d", s.Stats().SharedTempReuses)
	}

	// A query on the temp table itself never touches the database.
	sent := backend.Stats().Queries
	res, err := c1.Query(ctx, &query.Query{
		View: query.View{Table: "myfilter"},
		Dims: []query.Dim{{Col: "carrier"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 {
		t.Errorf("temp rows = %d", res.N)
	}
	if backend.Stats().Queries != sent {
		t.Error("temp-table-only query should not reach the database")
	}
	if s.Stats().LocalAnswers != 1 {
		t.Errorf("local answers = %d", s.Stats().LocalAnswers)
	}

	// Queries referencing the temp filter are rewritten for the backend.
	filtered, err := c1.Query(ctx, &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
		Filters:  []query.Filter{query.TempFilter("carrier", "myfilter")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.N != 3 {
		t.Errorf("filtered carriers = %d", filtered.N)
	}

	// Dropping references: the shared definition dies with the last one.
	if err := c1.DropTempTable("myfilter"); err != nil {
		t.Fatal(err)
	}
	if s.SharedTempCount() != 1 {
		t.Error("definition still referenced by c2")
	}
	c2.Close()
	if s.SharedTempCount() != 0 {
		t.Error("definition should be gone after last reference")
	}
	// Unknown temp filter errors.
	if _, err := c1.Query(ctx, &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
		Filters:  []query.Filter{query.TempFilter("carrier", "gone")},
	}); err == nil {
		t.Error("unknown temp table should fail")
	}
}

func TestCloseReclaimsState(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{PipelineOptions: core.DefaultOptions()})
	c, _, _ := s.Connect("FAA Flights", "u1")
	if err := c.CreateTempTable("t1", "carrier", []storage.Value{storage.StrValue("WN")}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if s.SharedTempCount() != 0 {
		t.Error("close should reclaim temp state")
	}
	if _, err := c.Query(context.Background(), &query.Query{
		View: query.View{Table: "flights"},
		Dims: []query.Dim{{Col: "carrier"}},
	}); err == nil {
		t.Error("query on closed connection should fail")
	}
}
