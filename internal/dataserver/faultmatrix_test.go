package dataserver

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"vizq/internal/cache"
	"vizq/internal/chaos"
	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/resilience"
	"vizq/internal/tde/storage"
)

// The fault matrix runs every Data Server backend operation against every
// chaos fault kind and asserts three things at each cell: the operation
// fails, the failure is transport-classified (so the pool poisons the
// connection and the resilience layer would retry it), and the pool's
// stats identity Dials == Live + Evictions + Discards still holds at
// quiescence. Faults are scheduled deterministically (per accept index),
// so the matrix is reproducible under -race -count=2.

// publishThroughProxy publishes the flights source behind a chaos proxy
// and returns the server, a client connection, and the backend pool.
func publishThroughProxy(t *testing.T, sched chaos.Schedule, cfg Config) (*Server, *ClientConn, *connection.Pool, *chaos.Proxy) {
	t.Helper()
	backend := startBackend(t)
	proxy, err := chaos.New(backend.Addr(), sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	s := NewServer(cfg)
	if err := s.Publish(&PublishedSource{
		Name:                      "flights",
		Backend:                   proxy.Addr(),
		View:                      query.View{Table: "flights"},
		BackendSupportsTempTables: true,
		MaxPoolConnections:        2,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Unpublish("flights") })
	conn, _, err := s.Connect("flights", "matrix")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(conn.Close)
	return s, conn, s.pools["flights"], proxy
}

func checkPoolInvariant(t *testing.T, p *connection.Pool) {
	t.Helper()
	st := p.Stats()
	if got, want := st.Dials, int64(p.Live())+st.Evictions+st.Discards; got != want {
		t.Errorf("pool stats identity broken: Dials=%d, Live+Evictions+Discards=%d (live=%d ev=%d disc=%d)",
			got, want, p.Live(), st.Evictions, st.Discards)
	}
}

func matrixQuery() *query.Query {
	return &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
}

// bigInQuery carries an IN list larger than MaxInlineFilterValues, forcing
// the pipeline down the temp-table externalization path (OpTempCreate on
// the backend connection).
func bigInQuery() *query.Query {
	q := matrixQuery()
	q.Filters = []query.Filter{query.InFilter("origin",
		storage.StrValue("LAX"), storage.StrValue("SFO"), storage.StrValue("SEA"),
		storage.StrValue("ATL"), storage.StrValue("ORD"), storage.StrValue("DFW"))}
	return q
}

// matrixOps are the backend operations under test. Each runs one operation
// through the published source and returns its error.
var matrixOps = []struct {
	name string
	run  func(ctx context.Context, c *ClientConn) error
}{
	{"query", func(ctx context.Context, c *ClientConn) error {
		_, err := c.Query(ctx, matrixQuery())
		return err
	}},
	{"metadata", func(ctx context.Context, c *ClientConn) error {
		_, err := c.BackendMetadata(ctx)
		return err
	}},
	{"temp-create", func(ctx context.Context, c *ClientConn) error {
		_, err := c.Query(ctx, bigInQuery())
		return err
	}},
}

// matrixFaults are the scheduled fault kinds. Trickle paces one byte per
// 20ms, so any response overruns the 300ms op deadline; Stall blocks until
// the same deadline.
var matrixFaults = []chaos.Fault{
	{Kind: chaos.Refuse},
	{Kind: chaos.Stall},
	{Kind: chaos.CutMid, Bytes: 4},
	{Kind: chaos.Trickle, Delay: 20 * time.Millisecond},
}

// matrixConfig externalizes IN lists above 3 values so temp-create has a
// backend op to fail. No resilience: the matrix measures raw
// classification, not recovery.
func matrixConfig() Config {
	return Config{PipelineOptions: core.Options{MaxInlineFilterValues: 3}}
}

func TestFaultMatrixClassification(t *testing.T) {
	for _, fault := range matrixFaults {
		for _, op := range matrixOps {
			t.Run(fault.Kind.String()+"/"+op.name, func(t *testing.T) {
				_, conn, pool, _ := publishThroughProxy(t, chaos.Repeat(fault), matrixConfig())
				ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
				defer cancel()
				err := op.run(ctx, conn)
				if err == nil {
					t.Fatalf("%s against a %s backend succeeded", op.name, fault.Kind)
				}
				if !connection.IsTransport(err) {
					t.Fatalf("%s/%s error not transport-classified: %v", fault.Kind, op.name, err)
				}
				checkPoolInvariant(t, pool)
			})
		}
	}
}

// TestFaultMatrixQueryErrorIsNotTransport is the matrix's negative control:
// through a healthy proxy, a malformed query fails with a query-level error
// that must NOT be transport-classified (and must not poison the conn).
func TestFaultMatrixQueryErrorIsNotTransport(t *testing.T) {
	_, conn, pool, _ := publishThroughProxy(t, chaos.Healthy(), matrixConfig())
	q := matrixQuery()
	q.Dims = []query.Dim{{Col: "no_such_column"}}
	_, err := conn.Query(context.Background(), q)
	if err == nil {
		t.Fatal("query on a missing column succeeded")
	}
	if connection.IsTransport(err) {
		t.Fatalf("query-level error misclassified as transport: %v", err)
	}
	st := pool.Stats()
	if st.Discards != 0 {
		t.Errorf("query-level error poisoned a connection: %+v", st)
	}
	checkPoolInvariant(t, pool)
}

// TestFaultMatrixTempDropOnDeadConn exercises the remaining backend op at
// the pool level: a temp table is created on a healthy connection, the
// outage cuts every active relay, and the drop on the now-dead connection
// must come back transport-classified.
func TestFaultMatrixTempDropOnDeadConn(t *testing.T) {
	_, _, pool, proxy := publishThroughProxy(t, chaos.Healthy(), matrixConfig())
	ctx := context.Background()
	conn, err := pool.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	vals := valuesResult("origin", []storage.Value{storage.StrValue("LAX"), storage.StrValue("SFO")})
	if _, err := conn.CreateTempTable(ctx, "doomed", vals); err != nil {
		t.Fatalf("healthy temp-create failed: %v", err)
	}
	proxy.KillActive()
	dctx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancel()
	err = conn.DropTempTable(dctx, "doomed")
	if err == nil {
		t.Fatal("temp-drop on a cut connection succeeded")
	}
	if !connection.IsTransport(err) {
		t.Fatalf("temp-drop error not transport-classified: %v", err)
	}
	pool.Release(conn) // broken conn: Release must discard it
	if st := pool.Stats(); st.Discards != 1 {
		t.Errorf("dead connection not discarded on release: %+v", st)
	}
	checkPoolInvariant(t, pool)
}

// TestFaultMatrixRetryHealsAfterScriptedFailures: with a Seq schedule that
// refuses the first two connections and heals, a resilient pipeline's
// retries land the third attempt and the caller never sees the outage.
func TestFaultMatrixRetryHealsAfterScriptedFailures(t *testing.T) {
	cfg := matrixConfig()
	cfg.Resilience = &resilience.Config{
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		Seed: 11, BreakerMinSamples: 100,
	}
	_, conn, pool, proxy := publishThroughProxy(t,
		chaos.Seq(chaos.Fault{Kind: chaos.Refuse}, chaos.Fault{Kind: chaos.Refuse}), cfg)
	res, err := conn.Query(context.Background(), matrixQuery())
	if err != nil {
		t.Fatalf("retries did not absorb two scripted failures: %v", err)
	}
	if res.N == 0 || res.Stale {
		t.Fatalf("healed query returned N=%d stale=%v", res.N, res.Stale)
	}
	if got := proxy.Accepted(); got != 3 {
		t.Errorf("proxy accepted %d connections, want 3 (2 refused + 1 healed)", got)
	}
	checkPoolInvariant(t, pool)
}

// TestFaultMatrixBreakerLifecycle drives the breaker through its full
// closed -> open -> half-open -> closed cycle against a scripted outage.
func TestFaultMatrixBreakerLifecycle(t *testing.T) {
	// Caches are disabled so every query reaches the backend: the breaker,
	// not the cache, must be what absorbs the outage here.
	cfg := Config{PipelineOptions: core.Options{
		DisableIntelligentCache: true, DisableLiteralCache: true,
	}}
	cfg.Resilience = &resilience.Config{
		MaxAttempts: 1, Seed: 11,
		BreakerWindow: 4, BreakerMinSamples: 2, BreakerFailureRatio: 0.5,
		BreakerOpenFor: 50 * time.Millisecond,
	}
	s, conn, pool, proxy := publishThroughProxy(t, chaos.Healthy(), cfg)
	br := s.procs[strings.ToLower("flights")].Resilience().Breaker()
	ctx := context.Background()

	// Healthy baseline: closed.
	if _, err := conn.Query(ctx, matrixQuery()); err != nil {
		t.Fatal(err)
	}
	if br.State() != resilience.Closed {
		t.Fatalf("state = %v before the outage, want closed", br.State())
	}

	// Outage: two fast failures trip the breaker. Cache-missing queries are
	// forced by varying the filter so each one reaches the backend.
	proxy.SetMode(chaos.Fault{Kind: chaos.Refuse})
	proxy.KillActive()
	for i := 0; i < 2; i++ {
		q := matrixQuery()
		q.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue(strings.Repeat("X", i+1)))}
		if _, err := conn.Query(ctx, q); err == nil {
			t.Fatalf("query %d during outage succeeded", i)
		}
	}
	if br.State() != resilience.Open {
		t.Fatalf("state = %v after two failures, want open", br.State())
	}

	// Inside the cooldown the breaker fast-fails without touching the
	// backend.
	before := proxy.Accepted()
	q := matrixQuery()
	q.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue("YY"))}
	_, err := conn.Query(ctx, q)
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("open-breaker error = %v, want ErrOpen", err)
	}
	if got := proxy.Accepted(); got != before {
		t.Errorf("fast-fail dialed the backend: %d -> %d accepts", before, got)
	}

	// Heal, wait out the cooldown: the half-open probe closes the circuit.
	proxy.Heal()
	time.Sleep(80 * time.Millisecond)
	q = matrixQuery()
	q.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue("ZZ"))}
	if _, err := conn.Query(ctx, q); err != nil {
		t.Fatalf("post-heal probe failed: %v", err)
	}
	if br.State() != resilience.Closed {
		t.Fatalf("state = %v after healthy probe, want closed", br.State())
	}
	if st := br.Stats(); st.Opened != 1 || st.FastFails == 0 {
		t.Errorf("breaker stats = %+v, want Opened=1 and FastFails>0", st)
	}
	checkPoolInvariant(t, pool)
}

// TestFaultMatrixStaleServedDuringOutage: with ServeStale, a warmed query
// whose cache entry has expired is still answered — tagged stale — while
// the backend is down, and served fresh again after recovery.
func TestFaultMatrixStaleServedDuringOutage(t *testing.T) {
	cfg := matrixConfig()
	co := cache.DefaultOptions()
	co.FreshFor = 30 * time.Millisecond
	co.StaleGrace = time.Hour
	cfg.CacheOptions = co
	cfg.Resilience = &resilience.Config{
		MaxAttempts: 1, Seed: 11,
		BreakerWindow: 4, BreakerMinSamples: 2, BreakerFailureRatio: 0.5,
		BreakerOpenFor: time.Hour, ServeStale: true,
	}
	_, conn, pool, proxy := publishThroughProxy(t, chaos.Healthy(), cfg)
	ctx := context.Background()

	// Warm the cache, then let the entry expire.
	warm, err := conn.Query(ctx, matrixQuery())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	proxy.SetMode(chaos.Fault{Kind: chaos.Refuse})
	proxy.KillActive()
	res, err := conn.Query(ctx, matrixQuery())
	if err != nil {
		t.Fatalf("degraded read failed during outage: %v", err)
	}
	if !res.Stale {
		t.Fatal("outage answer not tagged stale")
	}
	if res.N != warm.N {
		t.Errorf("stale answer has %d rows, warm had %d", res.N, warm.N)
	}

	proxy.Heal()
	// The breaker is still open (cooldown = 1h): answers stay stale but
	// keep flowing — graceful degradation, not an error storm.
	res2, err := conn.Query(ctx, matrixQuery())
	if err != nil || !res2.Stale {
		t.Fatalf("breaker-open degraded read = (stale=%v, %v)", res2 != nil && res2.Stale, err)
	}
	checkPoolInvariant(t, pool)
}
