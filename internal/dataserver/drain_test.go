package dataserver

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/sched"
	"vizq/internal/tde/storage"
)

// TestDrainLifecycle covers the graceful-drain contract end to end:
// draining refuses new sessions with ErrDraining, sheds client queries
// through the scheduler with reason "draining", quiesces once in-flight
// work returns, and Undrain restores everything.
func TestDrainLifecycle(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{
		PipelineOptions: core.DefaultOptions(),
		Scheduler:       &sched.Config{},
	})
	conn, _, err := s.Connect("faa flights", "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if !s.Scheduler("FAA Flights").Draining() {
		t.Fatal("source scheduler not draining")
	}

	// New sessions are refused with the typed sentinel.
	if _, _, err := s.Connect("faa flights", "bob"); !errors.Is(err, ErrDraining) {
		t.Fatalf("Connect while draining = %v, want ErrDraining", err)
	}

	// Existing sessions shed through the scheduler: ErrShed (degradable)
	// with reason "draining".
	q := &query.Query{
		View:     query.View{Table: "ignored"},
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
	_, qerr := conn.Query(context.Background(), q)
	var se *sched.ShedError
	if !errors.As(qerr, &se) || se.Reason != "draining" {
		t.Fatalf("query while draining = %v, want draining shed", qerr)
	}
	if !errors.Is(qerr, sched.ErrShed) {
		t.Fatalf("draining shed does not wrap ErrShed: %v", qerr)
	}

	s.Undrain()
	if s.Draining() || s.Scheduler("FAA Flights").Draining() {
		t.Fatal("Undrain did not clear draining")
	}
	if _, _, err := s.Connect("faa flights", "bob"); err != nil {
		t.Fatalf("Connect after Undrain: %v", err)
	}
	if _, err := conn.Query(context.Background(), q); err != nil {
		t.Fatalf("query after Undrain: %v", err)
	}
	st := s.Scheduler("FAA Flights").Stats()
	if st.ShedDraining == 0 {
		t.Fatalf("stats = %+v, want ShedDraining > 0", st)
	}
}

// TestDrainDeadline: a drain with admitted work still in flight returns
// the context error, and the server stays draining afterwards.
func TestDrainDeadline(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{
		PipelineOptions: core.DefaultOptions(),
		Scheduler:       &sched.Config{},
	})
	// Hold a slot directly on the source's scheduler: an "in-flight query"
	// that outlives the drain deadline.
	tk, err := s.Scheduler("FAA Flights").Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with in-flight work = %v, want deadline exceeded", err)
	}
	if !s.Draining() {
		t.Fatal("failed drain flipped the server back to accepting")
	}
	tk.Done()
	// With the slot back, a fresh drain completes.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain after work finished: %v", err)
	}
	s.Undrain()
}

// TestSessionMovedError pins the failover error contract: typed, lists
// lost temp state, and unwraps to ErrSessionMoved.
func TestSessionMovedError(t *testing.T) {
	var err error = &SessionMovedError{From: "node0", To: "node2", LostTemps: []string{"selA", "selB"}}
	if !errors.Is(err, ErrSessionMoved) {
		t.Fatal("SessionMovedError does not unwrap to ErrSessionMoved")
	}
	var sm *SessionMovedError
	if !errors.As(err, &sm) || len(sm.LostTemps) != 2 || sm.To != "node2" {
		t.Fatalf("errors.As round trip mangled: %+v", sm)
	}
	msg := err.Error()
	for _, want := range []string{"node0", "node2", "selA", "selB"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error message %q missing %q", msg, want)
		}
	}
}

// TestTempAliases: the failover support surface reports live aliases and
// forgets dropped ones.
func TestTempAliases(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{PipelineOptions: core.DefaultOptions()})
	conn, _, err := s.Connect("faa flights", "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := conn.TempAliases(); len(got) != 0 {
		t.Fatalf("fresh connection has aliases %v", got)
	}
	if err := conn.CreateTempTable("sel", "origin", []storage.Value{storage.StrValue("LAX")}); err != nil {
		t.Fatal(err)
	}
	if got := conn.TempAliases(); len(got) != 1 || got[0] != "sel" {
		t.Fatalf("aliases = %v, want [sel]", got)
	}
	if err := conn.DropTempTable("sel"); err != nil {
		t.Fatal(err)
	}
	if got := conn.TempAliases(); len(got) != 0 {
		t.Fatalf("aliases after drop = %v", got)
	}
}
