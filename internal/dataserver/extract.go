package dataserver

import (
	"context"
	"fmt"
	"strings"

	"vizq/internal/remote"
	"vizq/internal/sched"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/storage"
)

// Published extracts (Sect. 5.1-5.2): instead of proxying every query to the
// live database, a source can be published WITH a TDE extract. The Data
// Server snapshots the view's tables into a local engine and serves all
// client queries from it; Refresh re-pulls from the live database —
// "refreshing a single extract daily — rather than all copies of it —
// significantly reduces the query load on the underlying database."

// systemUser is the fair-queuing identity maintenance traffic (extract
// pulls and refreshes) runs under.
const systemUser = "$system"

// extractState tracks one extracted source.
type extractState struct {
	liveBackend string
	localEng    *engine.Engine
	localSrv    *remote.Server
	tables      []string
}

// PublishExtract publishes a data source backed by a local extract of the
// live database. The source's Backend field must point at the live
// database; after publishing, queries never touch it until Refresh.
func (s *Server) PublishExtract(src *PublishedSource) error {
	if src.Name == "" || src.Backend == "" || src.View.Table == "" {
		return fmt.Errorf("dataserver: incomplete published source")
	}
	live := src.Backend
	tables := []string{src.View.Table}
	for _, j := range src.View.Joins {
		tables = append(tables, j.Table)
	}
	localEng := engine.New(storage.NewDatabase("extract:" + src.Name))
	// Extract pulls are maintenance traffic: Background class under the
	// server's system identity, so a live source sharing the backend never
	// starves dashboards for a snapshot and refresh traffic shares one
	// user-level queue no matter how many extracts pull at once.
	ctx := sched.WithClass(context.Background(), sched.Background)
	ctx = sched.WithUser(ctx, systemUser)
	if err := pullTables(ctx, live, localEng, tables); err != nil {
		return err
	}
	localSrv := remote.NewServer(localEng, remote.Config{QueryDOP: 2})
	if err := localSrv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	// The published source now points at the extract server.
	src.Backend = localSrv.Addr()
	src.BackendSupportsTempTables = true
	if err := s.Publish(src); err != nil {
		localSrv.Close()
		return err
	}
	s.mu.Lock()
	if s.extracts == nil {
		s.extracts = make(map[string]*extractState)
	}
	s.extracts[strings.ToLower(src.Name)] = &extractState{
		liveBackend: live, localEng: localEng, localSrv: localSrv, tables: tables,
	}
	s.mu.Unlock()
	return nil
}

// RefreshExtract re-pulls the extract's tables from the live database and
// purges the source's query caches so no stale results survive.
func (s *Server) RefreshExtract(name string) error {
	key := strings.ToLower(name)
	s.mu.Lock()
	st := s.extracts[key]
	proc := s.procs[key]
	s.mu.Unlock()
	if st == nil {
		return fmt.Errorf("dataserver: %q is not an extracted source", name)
	}
	// Drop and re-pull. Queries running concurrently against the old tables
	// keep their snapshot (tables are immutable); new queries see new data.
	for _, t := range st.tables {
		_ = st.localEng.Database().DropTable("Extract", t)
	}
	ctx := sched.WithClass(context.Background(), sched.Background)
	ctx = sched.WithUser(ctx, systemUser)
	if err := pullTables(ctx, st.liveBackend, st.localEng, st.tables); err != nil {
		return err
	}
	if proc != nil {
		proc.ClearCaches()
	}
	return nil
}

// IsExtract reports whether the published source is served from an extract.
func (s *Server) IsExtract(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.extracts[strings.ToLower(name)]
	return ok
}

// pullTables snapshots the named tables from a live backend into the local
// engine's Extract schema. The context carries the caller's priority class
// (extract pulls are Background).
func pullTables(ctx context.Context, liveAddr string, localEng *engine.Engine, tables []string) error {
	conn, err := remote.Dial(liveAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	for _, name := range tables {
		res, err := conn.Query(ctx, fmt.Sprintf("(table %s)", name))
		if err != nil {
			return fmt.Errorf("dataserver: extracting %s: %w", name, err)
		}
		tbl, err := engine.ResultToTable("Extract", name, res)
		if err != nil {
			return err
		}
		if err := localEng.Database().AddTable(tbl); err != nil {
			return err
		}
	}
	return localEng.RefreshSysTables()
}
