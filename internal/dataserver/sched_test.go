package dataserver

import (
	"context"
	"testing"

	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/sched"
)

// TestSchedulerPerSource pins the Data Server wiring: with a Scheduler
// config, every published source gets its own admission controller,
// client queries run as Interactive under a per-connection session, and
// an upstream Background tag survives the server's default.
func TestSchedulerPerSource(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{
		PipelineOptions: core.DefaultOptions(),
		Scheduler:       &sched.Config{},
	})
	sc := s.Scheduler("FAA Flights")
	if sc == nil {
		t.Fatal("published source has no scheduler")
	}
	if s.Scheduler("nope") != nil {
		t.Fatal("unknown source returned a scheduler")
	}
	// The limit anchors to the pool size (default 4).
	if got := sc.Limit(); got != 4 {
		t.Fatalf("scheduler limit %d, want pool max 4", got)
	}

	conn, _, err := s.Connect("faa flights", "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	q := &query.Query{
		View:     query.View{Table: "ignored"},
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
	if _, err := conn.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.AdmittedInteractive != 1 || st.AdmittedBackground != 0 {
		t.Fatalf("untagged client query must admit as Interactive: %+v", st)
	}

	// A caller-supplied Background tag must not be overridden by the
	// server's Interactive default (EnsureClass semantics).
	bg := sched.WithClass(context.Background(), sched.Background)
	q2 := q.Clone()
	q2.Dims = []query.Dim{{Col: "origin"}}
	if _, err := conn.Query(bg, q2); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.AdmittedBackground != 1 {
		t.Fatalf("Background tag lost through ClientConn.Query: %+v", st)
	}

	// A per-source override beats the server-wide config.
	if err := s.Publish(&PublishedSource{
		Name:      "tuned",
		Backend:   backend.Addr(),
		View:      query.View{Table: "flights"},
		Scheduler: &sched.Config{Limit: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Scheduler("tuned").Limit(); got != 2 {
		t.Fatalf("per-source scheduler limit %d, want 2", got)
	}

	// Unpublish drops the scheduler with the source.
	s.Unpublish("tuned")
	if s.Scheduler("tuned") != nil {
		t.Fatal("unpublished source still has a scheduler")
	}
}

// TestNoSchedulerByDefault: without a Scheduler config the pipeline runs
// unthrottled exactly as before — no scheduler is created.
func TestNoSchedulerByDefault(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{PipelineOptions: core.DefaultOptions()})
	if s.Scheduler("FAA Flights") != nil {
		t.Fatal("scheduler created without a Scheduler config")
	}
	conn, _, err := s.Connect("faa flights", "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := &query.Query{
		View:     query.View{Table: "ignored"},
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
	if _, err := conn.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
}
