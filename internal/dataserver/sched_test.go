package dataserver

import (
	"context"
	"errors"
	"testing"
	"time"

	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/sched"
	"vizq/internal/tde/storage"
)

// TestSchedulerPerSource pins the Data Server wiring: with a Scheduler
// config, every published source gets its own admission controller,
// client queries run as Interactive under a per-connection session, and
// an upstream Background tag survives the server's default.
func TestSchedulerPerSource(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{
		PipelineOptions: core.DefaultOptions(),
		Scheduler:       &sched.Config{},
	})
	sc := s.Scheduler("FAA Flights")
	if sc == nil {
		t.Fatal("published source has no scheduler")
	}
	if s.Scheduler("nope") != nil {
		t.Fatal("unknown source returned a scheduler")
	}
	// The limit anchors to the pool size (default 4).
	if got := sc.Limit(); got != 4 {
		t.Fatalf("scheduler limit %d, want pool max 4", got)
	}

	conn, _, err := s.Connect("faa flights", "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	q := &query.Query{
		View:     query.View{Table: "ignored"},
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
	if _, err := conn.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.AdmittedInteractive != 1 || st.AdmittedBackground != 0 {
		t.Fatalf("untagged client query must admit as Interactive: %+v", st)
	}

	// A caller-supplied Background tag must not be overridden by the
	// server's Interactive default (EnsureClass semantics).
	bg := sched.WithClass(context.Background(), sched.Background)
	q2 := q.Clone()
	q2.Dims = []query.Dim{{Col: "origin"}}
	if _, err := conn.Query(bg, q2); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.AdmittedBackground != 1 {
		t.Fatalf("Background tag lost through ClientConn.Query: %+v", st)
	}

	// A per-source override beats the server-wide config.
	if err := s.Publish(&PublishedSource{
		Name:      "tuned",
		Backend:   backend.Addr(),
		View:      query.View{Table: "flights"},
		Scheduler: &sched.Config{Limit: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Scheduler("tuned").Limit(); got != 2 {
		t.Fatalf("per-source scheduler limit %d, want 2", got)
	}

	// Unpublish drops the scheduler with the source.
	s.Unpublish("tuned")
	if s.Scheduler("tuned") != nil {
		t.Fatal("unpublished source still has a scheduler")
	}
}

// TestUserQuotaAcrossConnections pins that the fair-queuing user identity
// comes from the authenticated user, not the connection: two connections
// opened by the same user share ONE per-user queue bound, while a
// different user is untouched by it.
func TestUserQuotaAcrossConnections(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{
		PipelineOptions: core.DefaultOptions(),
		Scheduler: &sched.Config{Limit: 1, MinLimit: 1, MaxLimit: 1,
			MaxUserQueue: 1, MaxQueue: 100, MaxSessionQueue: 100},
	})
	sc := s.Scheduler("FAA Flights")

	// Occupy the single slot so client queries queue instead of running.
	hold, err := sc.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	distinct := func(i int) *query.Query {
		// Distinct filters per call defeat caching and single-flight
		// coalescing: every query must reach admission on its own.
		return &query.Query{
			View:     query.View{Table: "ignored"},
			Dims:     []query.Dim{{Col: "carrier"}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}},
			Filters:  []query.Filter{query.GtFilter("distance", storage.IntValue(int64(100+i)))},
		}
	}
	connect := func(user string) *ClientConn {
		conn, _, err := s.Connect("faa flights", user)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(conn.Close)
		return conn
	}
	alice1, alice2, bob := connect("alice"), connect("alice"), connect("bob")

	waitQueued := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for sc.Stats().Queued != n {
			if time.Now().After(deadline) {
				t.Fatalf("queue depth never reached %d: %+v", n, sc.Stats())
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	done := make(chan error, 2)
	go func() {
		_, err := alice1.Query(context.Background(), distinct(1))
		done <- err
	}()
	waitQueued(1)

	// Same user, fresh connection (fresh session): the per-user bound of 1
	// still applies, so this sheds instead of queuing.
	if _, err := alice2.Query(context.Background(), distinct(2)); !errors.Is(err, sched.ErrShed) {
		t.Fatalf("second connection of the same user must hit the user quota: %v", err)
	}
	if st := sc.Stats(); st.ShedUserQueueFull != 1 {
		t.Fatalf("user-quota shed not accounted: %+v", st)
	}

	// A different user queues fine past alice's quota.
	go func() {
		_, err := bob.Query(context.Background(), distinct(3))
		done <- err
	}()
	waitQueued(2)

	hold.Done()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("queued query failed: %v", err)
		}
	}
}

// TestNoSchedulerByDefault: without a Scheduler config the pipeline runs
// unthrottled exactly as before — no scheduler is created.
func TestNoSchedulerByDefault(t *testing.T) {
	backend := startBackend(t)
	s := publishFlights(t, backend, Config{PipelineOptions: core.DefaultOptions()})
	if s.Scheduler("FAA Flights") != nil {
		t.Fatal("scheduler created without a Scheduler config")
	}
	conn, _, err := s.Connect("faa flights", "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := &query.Query{
		View:     query.View{Table: "ignored"},
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
	if _, err := conn.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
}
