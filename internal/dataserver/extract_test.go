package dataserver

import (
	"context"
	"testing"

	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

func TestPublishedExtractServesWithoutLiveBackend(t *testing.T) {
	live := startBackend(t)
	s := NewServer(Config{PipelineOptions: core.DefaultOptions()})
	src := &PublishedSource{
		Name:    "Flights Extract",
		Backend: live.Addr(),
		View: query.View{Table: "flights",
			Joins: []query.JoinSpec{{Table: "carriers", LeftCol: "carrier", RightCol: "carrier"}}},
	}
	if err := s.PublishExtract(src); err != nil {
		t.Fatal(err)
	}
	defer s.Unpublish("Flights Extract")
	if !s.IsExtract("Flights Extract") {
		t.Fatal("source should be marked as extract")
	}
	pullQueries := live.Stats().Queries // the snapshot pulls

	conn, _, err := s.Connect("Flights Extract", "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx := context.Background()
	res, err := conn.Query(ctx, &query.Query{
		Dims:     []query.Dim{{Col: "airline_name"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("extract query empty")
	}
	var total int64
	for i := 0; i < res.N; i++ {
		total += res.Value(i, 1).I
	}
	if total != 9000 {
		t.Errorf("total flights = %d", total)
	}
	// The live database saw only the extraction pulls, no per-query load.
	if got := live.Stats().Queries; got != pullQueries {
		t.Errorf("live backend received %d extra queries", got-pullQueries)
	}
}

func TestRefreshExtractPicksUpNewDataAndPurgesCaches(t *testing.T) {
	// A live backend whose table we can replace between refreshes.
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 3000, Days: 30, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	liveEng := engine.New(db)
	live := remote.NewServer(liveEng, remote.Config{})
	if err := live.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { live.Close() })

	s := NewServer(Config{PipelineOptions: core.DefaultOptions()})
	src := &PublishedSource{
		Name:    "Snapshot",
		Backend: live.Addr(),
		View:    query.View{Table: "flights"},
	}
	if err := s.PublishExtract(src); err != nil {
		t.Fatal(err)
	}
	defer s.Unpublish("Snapshot")

	conn, _, err := s.Connect("Snapshot", "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx := context.Background()
	countQ := func() int64 {
		res, err := conn.Query(ctx, &query.Query{
			Measures: []query.Measure{{Fn: query.Count, As: "n"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Value(0, 0).I
	}
	if got := countQ(); got != 3000 {
		t.Fatalf("initial count = %d", got)
	}

	// The live data grows; the extract (and its caches) are stale until
	// refresh.
	bigger, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 5000, Days: 30, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	newTbl, _ := bigger.Table("Extract", "flights")
	if err := liveEng.Database().DropTable("Extract", "flights"); err != nil {
		t.Fatal(err)
	}
	if err := liveEng.Database().AddTable(newTbl); err != nil {
		t.Fatal(err)
	}
	if got := countQ(); got != 3000 {
		t.Fatalf("pre-refresh count should be the cached snapshot, got %d", got)
	}
	if err := s.RefreshExtract("Snapshot"); err != nil {
		t.Fatal(err)
	}
	if got := countQ(); got != 5000 {
		t.Fatalf("post-refresh count = %d, want 5000 (cache must be purged)", got)
	}
	// Refreshing an unknown source fails.
	if err := s.RefreshExtract("nope"); err == nil {
		t.Error("refresh of unknown extract should fail")
	}
}

func TestExtractUserFiltersStillApply(t *testing.T) {
	live := startBackend(t)
	s := NewServer(Config{PipelineOptions: core.DefaultOptions()})
	src := &PublishedSource{
		Name:    "Filtered Extract",
		Backend: live.Addr(),
		View:    query.View{Table: "flights"},
		UserFilters: map[string][]query.Filter{
			"west": {query.InFilter("origin", storage.StrValue("LAX"))},
		},
	}
	if err := s.PublishExtract(src); err != nil {
		t.Fatal(err)
	}
	defer s.Unpublish("Filtered Extract")
	conn, _, err := s.Connect("Filtered Extract", "west")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.Query(context.Background(), &query.Query{
		Dims:     []query.Dim{{Col: "origin"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 || res.Value(0, 0).S != "LAX" {
		t.Errorf("user filter on extract broken: %d rows", res.N)
	}
}
