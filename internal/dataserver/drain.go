package dataserver

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"vizq/internal/obs"
	"vizq/internal/sched"
)

// ErrDraining is the sentinel Connect wraps while the server drains: new
// sessions belong on a peer node.
var ErrDraining = errors.New("dataserver: draining")

// ErrSessionMoved is the sentinel a failover wraps when a session was
// re-established on a surviving node. The move itself succeeded — the
// typed SessionMovedError lists the in-memory temp tables that did NOT
// travel, so the caller re-materializes them instead of silently
// querying against missing data.
var ErrSessionMoved = errors.New("dataserver: session moved")

// SessionMovedError reports a completed session failover and the state
// lost with it.
type SessionMovedError struct {
	From      string   // node the session left
	To        string   // node it re-connected to
	LostTemps []string // temp-table aliases the new node does not have
}

// Error renders the move.
func (e *SessionMovedError) Error() string {
	return fmt.Sprintf("dataserver: session moved %s -> %s (lost temp tables: %s)",
		e.From, e.To, strings.Join(e.LostTemps, ", "))
}

// Unwrap makes errors.Is(err, ErrSessionMoved) hold.
func (e *SessionMovedError) Unwrap() error { return ErrSessionMoved }

// Drain gracefully takes the server out of rotation: new sessions are
// refused (Connect wraps ErrDraining), every published source's
// scheduler stops admitting — queued waiters flush immediately with a
// "draining" shed, which stale-on-shed may still answer — and in-flight
// admitted work is waited out until ctx expires. The scheduler's
// draining bit rides the next cluster digest, so peers' balancers stop
// steering here without any extra signaling. Sources without admission
// control have no quiesce handle; Drain still refuses their new
// sessions but cannot wait out their in-flight work.
//
// Drain returns nil when every source quiesced inside the deadline, or
// ctx's error when work was still in flight — either way the server
// stays draining until Undrain.
func (s *Server) Drain(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, obs.SpanDrain)
	defer sp.Finish()

	s.mu.Lock()
	s.draining = true
	scheds := make([]*sched.Scheduler, 0, len(s.scheds))
	for _, sd := range s.scheds {
		scheds = append(scheds, sd)
	}
	s.mu.Unlock()

	for _, sd := range scheds {
		sd.SetDraining(true)
	}
	var firstErr error
	for _, sd := range scheds {
		if err := sd.Quiesce(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		sp.Annotate("outcome", "deadline")
		return fmt.Errorf("dataserver: drain incomplete: %w", firstErr)
	}
	sp.Annotate("outcome", "quiesced")
	return nil
}

// Undrain puts the server back in rotation: sessions connect again and
// every source's scheduler resumes admission (the cleared draining bit
// rides the next digest).
func (s *Server) Undrain() {
	s.mu.Lock()
	s.draining = false
	scheds := make([]*sched.Scheduler, 0, len(s.scheds))
	for _, sd := range s.scheds {
		scheds = append(scheds, sd)
	}
	s.mu.Unlock()
	for _, sd := range scheds {
		sd.SetDraining(false)
	}
}

// Draining reports whether the server is refusing new sessions.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// TempAliases lists the connection's live temp-table aliases — the state
// a failover must re-materialize on the new node.
func (c *ClientConn) TempAliases() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.temps))
	for alias := range c.temps {
		out = append(out, alias)
	}
	return out
}
