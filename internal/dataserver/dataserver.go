// Package dataserver implements the Tableau Data Server (Sect. 5): a proxy
// between clients and underlying databases that hosts published data
// sources — shared calculations, shared extracts, row-level user filters —
// and manages temporary table state both in memory and on the database.
// Queries go through the same optimization pipeline as direct connections
// (the Tableau 9.0 unification), so published sources get identical
// caching, fusion and batching behaviour.
package dataserver

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"vizq/internal/cache"
	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/obs"
	"vizq/internal/query"
	"vizq/internal/resilience"
	"vizq/internal/sched"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// Data Server metrics, shared process-wide.
var (
	cDSQueries = obs.C("ds.queries")
	cDSLocal   = obs.C("ds.local_answers")
)

// PublishedSource is a data source published to the server: a view of the
// underlying database, shared calculations, and per-user row filters
// ("an individual salesperson may only be able to see customers in their
// region").
type PublishedSource struct {
	Name    string
	Backend string // address of the underlying database server
	View    query.View
	// Calculations maps shared calculation names to TQL expressions; a
	// calculation "can be defined once and used everywhere".
	Calculations map[string]string
	// UserFilters lists mandatory filters per user name.
	UserFilters map[string][]query.Filter
	// BackendSupportsTempTables mirrors the capability probe made when a
	// client connects (Sect. 5.3).
	BackendSupportsTempTables bool
	// MaxPoolConnections bounds the proxy's pool to the database.
	MaxPoolConnections int
	// Resilience overrides the server-wide retry/breaker/stale policy for
	// this source (nil = inherit Config.Resilience). Per-source tuning
	// matters because the server fronts heterogeneous customer-operated
	// backends with very different failure profiles (Sect. 5).
	Resilience *resilience.Config
	// Scheduler overrides the server-wide admission-control policy for
	// this source (nil = inherit Config.Scheduler). The scheduler's
	// initial in-flight limit defaults to the source's pool size.
	Scheduler *sched.Config
}

// Config tunes the server.
type Config struct {
	// DisableInMemoryTempTables forces all temp state onto the database
	// ("if desired, in-memory temporary tables on Data Server can be
	// disabled").
	DisableInMemoryTempTables bool
	// PipelineOptions configure the shared query pipeline.
	PipelineOptions core.Options
	// CacheOptions sizes each published source's query caches (shard
	// count, entry/byte budgets, fresh/stale lifetimes). The zero value
	// uses cache.DefaultOptions().
	CacheOptions cache.Options
	// Resilience, when set, wraps every published source's backend access
	// in retry/backoff, a per-source circuit breaker, and (if ServeStale)
	// degraded reads from expired cache entries during outages. Individual
	// sources may override it via PublishedSource.Resilience.
	Resilience *resilience.Config
	// Scheduler, when set, places an admission controller in front of
	// every published source: client queries run as Interactive, fair-
	// queued hierarchically — per authenticated user, then per client
	// connection within the user — extract refreshes as Background, and
	// overload is shed with sched.ErrShed instead of queuing into slow
	// timeouts. Individual sources may override it via
	// PublishedSource.Scheduler.
	Scheduler *sched.Config
	// Cluster, when set (and Node and Bus are filled in), coordinates
	// admission across Data Server nodes: every published source's
	// scheduler publishes load digests through the bus and blends peer
	// pressure into local decisions. The coordinator is created at
	// NewServer but its background loop is not started — call
	// Coordinator().Start() (production) or drive Coordinator().Step()
	// directly (deterministic tests). Ignored without Scheduler-equipped
	// sources: there is nothing to coordinate.
	Cluster *sched.ClusterConfig
}

// cacheOptions resolves the configured cache sizing.
func (c Config) cacheOptions() cache.Options {
	if c.CacheOptions == (cache.Options{}) {
		return cache.DefaultOptions()
	}
	return c.CacheOptions
}

// Stats counts server activity.
type Stats struct {
	Queries          int64
	LocalAnswers     int64 // evaluated without touching the database
	BackendTempOps   int64
	InMemTempTables  int64
	SharedTempReuses int64
}

// Server hosts published data sources.
type Server struct {
	cfg   Config
	coord *sched.Coordinator

	mu       sync.Mutex
	draining bool // refusing new sessions (see Drain)
	sources  map[string]*PublishedSource
	procs    map[string]*core.Processor
	pools    map[string]*connection.Pool
	scheds   map[string]*sched.Scheduler
	temps    map[string]*tempDef // content hash -> shared definition
	extracts map[string]*extractState
	connSeq  int
	stats    Stats
}

// tempDef is one in-memory temporary table definition, shared across client
// connections and reference-counted (Sect. 5.4: "temporary table
// definitions are shared across client connections ... removed when all
// references to them are removed").
type tempDef struct {
	hash string
	rows *exec.Result
	col  string // single value column name
	refs int
}

// NewServer creates an empty Data Server.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		sources: make(map[string]*PublishedSource),
		procs:   make(map[string]*core.Processor),
		pools:   make(map[string]*connection.Pool),
		scheds:  make(map[string]*sched.Scheduler),
		temps:   make(map[string]*tempDef),
	}
	if cfg.Cluster != nil {
		// An incomplete cluster config (no node id or bus) degrades to
		// uncoordinated per-node admission rather than failing the server:
		// coordination is advisory by design.
		if coord, err := sched.NewCoordinator(*cfg.Cluster); err == nil {
			s.coord = coord
		}
	}
	return s
}

// Coordinator returns the server's cluster admission coordinator, or nil
// when cluster coordination is not configured. Callers own its lifecycle:
// Start()/Stop() for the background publish loop, or Step() directly.
func (s *Server) Coordinator() *sched.Coordinator { return s.coord }

// Publish registers a data source.
func (s *Server) Publish(src *PublishedSource) error {
	if src.Name == "" || src.Backend == "" || src.View.Table == "" {
		return fmt.Errorf("dataserver: incomplete published source")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(src.Name)
	if _, ok := s.sources[key]; ok {
		return fmt.Errorf("dataserver: source %q already published", src.Name)
	}
	// Normalize lookup keys.
	if len(src.Calculations) > 0 {
		calcs := make(map[string]string, len(src.Calculations))
		for k, v := range src.Calculations {
			calcs[strings.ToLower(k)] = v
		}
		src.Calculations = calcs
	}
	if len(src.UserFilters) > 0 {
		uf := make(map[string][]query.Filter, len(src.UserFilters))
		for k, v := range src.UserFilters {
			uf[strings.ToLower(k)] = v
		}
		src.UserFilters = uf
	}
	max := src.MaxPoolConnections
	if max <= 0 {
		max = 4
	}
	pool := connection.NewPool(src.Backend, connection.PoolConfig{Max: max})
	popt := s.cfg.PipelineOptions
	if src.Resilience != nil {
		popt.Resilience = src.Resilience
	} else if s.cfg.Resilience != nil {
		popt.Resilience = s.cfg.Resilience
	}
	// Admission control: one scheduler per source, its in-flight limit
	// anchored to the pool size unless the config pins one.
	schedCfg := src.Scheduler
	if schedCfg == nil {
		schedCfg = s.cfg.Scheduler
	}
	if schedCfg != nil {
		sc := *schedCfg
		if sc.Limit <= 0 {
			sc.Limit = max
		}
		sd := sched.New(sc)
		s.scheds[key] = sd
		popt.Scheduler = sd
		if s.coord != nil {
			s.coord.Register(key, sd)
		}
	}
	s.sources[key] = src
	s.pools[key] = pool
	s.procs[key] = core.NewProcessor(pool, cache.NewIntelligentCache(s.cfg.cacheOptions()),
		cache.NewLiteralCache(s.cfg.cacheOptions()), popt)
	return nil
}

// Scheduler returns the named source's admission controller, or nil when
// the source is unknown or admission control is not configured.
func (s *Server) Scheduler(name string) *sched.Scheduler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheds[strings.ToLower(name)]
}

// Unpublish removes a source, closing its pool and any extract server.
func (s *Server) Unpublish(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if p, ok := s.pools[key]; ok {
		p.Close()
	}
	if st, ok := s.extracts[key]; ok {
		st.localSrv.Close()
		delete(s.extracts, key)
	}
	delete(s.sources, key)
	delete(s.pools, key)
	delete(s.procs, key)
	if _, ok := s.scheds[key]; ok && s.coord != nil {
		s.coord.Unregister(key)
	}
	delete(s.scheds, key)
}

// Stats snapshots counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SharedTempCount reports live shared temp definitions.
func (s *Server) SharedTempCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.temps)
}

// Metadata describes a published source to a connecting client.
type Metadata struct {
	Source             string
	Table              string
	Calculations       []string
	SupportsTempTables bool
}

// ClientConn is one client's connection to a published data source. State
// (temp table references) is reclaimed by Close, mirroring connection
// expiry (Sect. 5.4).
type ClientConn struct {
	srv    *Server
	source *PublishedSource
	proc   *core.Processor
	user   string
	id     string // fair-queuing session identity

	mu    sync.Mutex
	temps map[string]*tempDef // client alias -> shared definition
	open  bool
}

// Connect opens a client connection; the returned metadata populates the
// client's data window.
func (s *Server) Connect(sourceName, user string) (*ClientConn, *Metadata, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, nil, fmt.Errorf("dataserver: connect refused: %w", ErrDraining)
	}
	key := strings.ToLower(sourceName)
	src, ok := s.sources[key]
	if !ok {
		return nil, nil, fmt.Errorf("dataserver: no published source %q", sourceName)
	}
	md := &Metadata{
		Source:             src.Name,
		Table:              src.View.Table,
		SupportsTempTables: src.BackendSupportsTempTables,
	}
	for name := range src.Calculations {
		md.Calculations = append(md.Calculations, name)
	}
	s.connSeq++
	return &ClientConn{
		srv:    s,
		source: src,
		proc:   s.procs[key],
		user:   user,
		id:     fmt.Sprintf("%s#%d", user, s.connSeq),
		temps:  make(map[string]*tempDef),
		open:   true,
	}, md, nil
}

// Close releases the connection's temp table references.
func (c *ClientConn) Close() {
	c.mu.Lock()
	temps := c.temps
	c.temps = map[string]*tempDef{}
	c.open = false
	c.mu.Unlock()
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	for _, def := range temps {
		def.refs--
		if def.refs <= 0 {
			delete(c.srv.temps, def.hash)
		}
	}
}

// CreateTempTable registers a single-column value list as an in-memory
// temporary table under the client-chosen alias. Identical contents share
// one definition across connections.
func (c *ClientConn) CreateTempTable(alias, col string, vals []storage.Value) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.open {
		return fmt.Errorf("dataserver: connection closed")
	}
	if _, ok := c.temps[alias]; ok {
		return fmt.Errorf("dataserver: temp table %q exists", alias)
	}
	if len(vals) == 0 {
		return fmt.Errorf("dataserver: empty temp table")
	}
	res := valuesResult(col, vals)
	h := contentHash(col, vals)

	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	def, ok := c.srv.temps[h]
	if ok {
		c.srv.stats.SharedTempReuses++
	} else {
		def = &tempDef{hash: h, rows: res, col: col}
		c.srv.temps[h] = def
		c.srv.stats.InMemTempTables++
	}
	def.refs++
	c.temps[alias] = def
	return nil
}

// DropTempTable releases the client's reference to an alias.
func (c *ClientConn) DropTempTable(alias string) error {
	c.mu.Lock()
	def, ok := c.temps[alias]
	delete(c.temps, alias)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("dataserver: no temp table %q", alias)
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	def.refs--
	if def.refs <= 0 {
		delete(c.srv.temps, def.hash)
	}
	return nil
}

// Query executes a client query against the published source: shared
// calculations are expanded, user filters enforced, temp-table filters
// resolved, and the result produced through the unified pipeline.
func (c *ClientConn) Query(ctx context.Context, q *query.Query) (*exec.Result, error) {
	c.mu.Lock()
	if !c.open {
		c.mu.Unlock()
		return nil, fmt.Errorf("dataserver: connection closed")
	}
	c.mu.Unlock()
	c.srv.mu.Lock()
	c.srv.stats.Queries++
	c.srv.mu.Unlock()
	cDSQueries.Inc()
	// Client queries are someone waiting on a spinner: Interactive unless
	// the caller tagged otherwise, fair-queued per user and, within the
	// user, per client connection — so a user's share of the source is the
	// same whether they hold one connection or ten.
	ctx = sched.EnsureClass(ctx, sched.Interactive)
	ctx = sched.EnsureUser(ctx, c.user)
	ctx = sched.EnsureSession(ctx, c.id)
	ctx, sp := obs.StartSpan(ctx, obs.SpanDSQuery)
	defer sp.Finish()

	rq := q.Clone()
	rq.DataSource = c.source.Name

	// A query whose view IS a client temp table answers from memory before
	// the published view is substituted.
	c.mu.Lock()
	_, isTemp := c.temps[rq.View.Table]
	c.mu.Unlock()
	if isTemp {
		res, _, err := c.tryLocalTempQuery(rq)
		if err == nil {
			c.srv.mu.Lock()
			c.srv.stats.LocalAnswers++
			c.srv.mu.Unlock()
			cDSLocal.Inc()
			sp.Annotate("answer", "local-temp")
		}
		return res, err
	}
	rq.View = c.source.View

	// Expand shared calculations: a dim whose Col names a published
	// calculation becomes a calculated dimension.
	for i, d := range rq.Dims {
		if d.Col == "" {
			continue
		}
		if expr, ok := c.source.Calculations[strings.ToLower(d.Col)]; ok {
			rq.Dims[i] = query.Dim{Expr: expr, As: d.Name()}
		}
	}

	// Row-level security: user filters apply before anything else and
	// cannot be removed by the client.
	if uf, ok := c.source.UserFilters[strings.ToLower(c.user)]; ok {
		rq.Filters = append(append([]query.Filter(nil), uf...), rq.Filters...)
	}

	// Resolve temp-table filters for the backend.
	if err := c.resolveTempFilters(rq); err != nil {
		return nil, err
	}
	return c.proc.Execute(ctx, rq)
}

// BackendMetadata retrieves the published table's schema from the backend
// through the shared pipeline — pooled, retried, and breaker-guarded like
// any query (the paper counts metadata retrieval among the per-connection
// costs the Data Server exists to absorb, Sect. 5).
func (c *ClientConn) BackendMetadata(ctx context.Context) (*exec.Result, error) {
	c.mu.Lock()
	open := c.open
	c.mu.Unlock()
	if !open {
		return nil, fmt.Errorf("dataserver: connection closed")
	}
	return c.proc.Metadata(ctx, c.source.View.Table)
}

// tryLocalTempQuery answers a query whose view is a client temp table from
// the in-memory definition, no database involved.
func (c *ClientConn) tryLocalTempQuery(q *query.Query) (*exec.Result, bool, error) {
	c.mu.Lock()
	def, ok := c.temps[q.View.Table]
	c.mu.Unlock()
	if !ok || len(q.View.Joins) > 0 {
		return nil, false, nil
	}
	// Evaluate by deriving from a synthetic stored query over the temp rows.
	stored := &query.Query{
		DataSource: q.DataSource,
		View:       q.View,
		Dims:       []query.Dim{{Col: def.col}},
		Measures:   []query.Measure{{Fn: query.Count, As: "$n"}},
	}
	res, ok2 := cache.Derive(stored, def.rows, q)
	if !ok2 {
		return nil, true, fmt.Errorf("dataserver: temp table query not answerable locally")
	}
	return res, true, nil
}

// resolveTempFilters turns FilterTemp conjuncts into backend joins (when
// the database supports temp tables) or inline IN lists (the
// rewrite-without-temp-table fallback of Sect. 5.3).
func (c *ClientConn) resolveTempFilters(q *query.Query) error {
	var keep []query.Filter
	for _, f := range q.Filters {
		if f.Kind != query.FilterTemp {
			keep = append(keep, f)
			continue
		}
		c.mu.Lock()
		def, ok := c.temps[f.Temp]
		c.mu.Unlock()
		if !ok {
			return fmt.Errorf("dataserver: unknown temp table %q", f.Temp)
		}
		vals := make([]storage.Value, def.rows.N)
		for i := 0; i < def.rows.N; i++ {
			vals[i] = def.rows.Value(i, 0)
		}
		// Inline as an IN filter: the pipeline's own externalization turns
		// oversized lists into a session temp table on the database when
		// the backend supports it.
		if !c.source.BackendSupportsTempTables {
			keep = append(keep, query.InFilter(f.Col, vals...))
			continue
		}
		keep = append(keep, query.InFilter(f.Col, vals...))
		c.srv.mu.Lock()
		c.srv.stats.BackendTempOps++
		c.srv.mu.Unlock()
	}
	q.Filters = keep
	return nil
}

func valuesResult(col string, vals []storage.Value) *exec.Result {
	res := exec.NewResult([]plan.ColInfo{
		{Name: col, Type: vals[0].Type},
		{Name: "$n", Type: storage.TInt},
	})
	seen := map[string]bool{}
	for _, v := range vals {
		k := v.String()
		if v.Null || seen[k] {
			continue
		}
		seen[k] = true
		res.AppendRow([]storage.Value{v, storage.IntValue(1)})
	}
	return res
}

func contentHash(col string, vals []storage.Value) string {
	h := sha256.New()
	h.Write([]byte(strings.ToLower(col)))
	for _, v := range vals {
		h.Write([]byte{0})
		h.Write([]byte(v.String()))
	}
	return hex.EncodeToString(h.Sum(nil))
}
