package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"vizq/internal/cache"
	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/sched"
	"vizq/internal/tde/storage"
)

// E11AdmissionControl measures what an overload burst costs interactive
// users with and without the admission-control layer. The paper's Data
// Server multiplexes many dashboards over a small connection pool
// (Sect. 3.5); when arrivals exceed capacity, an ungoverned pipeline lets
// every request pile onto the pool queue, so each client waits its full
// timeout to learn it lost. The scheduler instead bounds the queue and
// sheds doomed work in microseconds: completed queries keep a bounded
// p99, and rejected ones hear "no" immediately instead of after the
// timeout.
func E11AdmissionControl(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "overload burst at 4x saturation: scheduler off vs on",
		Claim: "admission control bounds interactive p99 under overload and converts slow timeouts into fast, typed sheds",
		Header: []string{"mode", "offered", "completed", "shed", "slow timeouts",
			"p50 ms", "p99 ms", "max shed ms", "backend queries"},
	}
	off, err := runOverloadArm(s, false)
	if err != nil {
		return nil, err
	}
	on, err := runOverloadArm(s, true)
	if err != nil {
		return nil, err
	}
	for _, arm := range []*overloadArm{off, on} {
		t.Rows = append(t.Rows, []string{arm.mode, fmt.Sprint(arm.offered),
			fmt.Sprint(arm.completed), fmt.Sprint(arm.shed), fmt.Sprint(arm.slowTimeouts),
			ms(arm.p50), ms(arm.p99), arm.maxShed, fmt.Sprint(arm.backend)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("open-loop arrivals: %d queries at 4x pool capacity across 8 sessions; client timeout = 24x the measured uncontended service time",
			off.offered),
		"slow timeout = the client burned its whole budget before learning it lost; shed = typed ErrShed in microseconds",
		"scheduler: Limit=pool Max=2, MaxQueue=4 — bounded queue bounds the worst admitted wait")
	return t, nil
}

type overloadArm struct {
	mode         string
	offered      int
	completed    int
	shed         int
	slowTimeouts int
	p50, p99     time.Duration
	maxShed      string
	backend      int64
}

// runOverloadArm fires an open-loop burst at 4x the pool's service rate.
func runOverloadArm(s Scale, scheduled bool) (*overloadArm, error) {
	srv, err := startRemote(s.RemoteRows, remote.Config{Latency: s.Latency})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	pool := connection.NewPool(srv.Addr(), connection.PoolConfig{Max: 2})
	defer pool.Close()

	// Every query must reach the backend: no caches, no coalescing — the
	// experiment isolates the admission layer.
	opt := core.DefaultOptions()
	opt.DisableIntelligentCache = true
	opt.DisableLiteralCache = true
	opt.DisableSingleFlight = true
	arm := &overloadArm{mode: "scheduler OFF", maxShed: "-"}
	var sc *sched.Scheduler
	if scheduled {
		arm.mode = "scheduler ON"
		// Limit pinned to the pool size: with the governor free to raise it,
		// admitted queries would stack up in the pool queue and re-inflate
		// exactly the unbounded wait this experiment measures.
		sc = sched.New(sched.Config{Limit: 2, MinLimit: 2, MaxLimit: 2, MaxQueue: 4, MaxSessionQueue: 2})
		opt.Scheduler = sc
	}
	p := core.NewProcessor(pool, cache.NewIntelligentCache(cache.DefaultOptions()),
		cache.NewLiteralCache(cache.DefaultOptions()), opt)

	burstQuery := func(i int) *query.Query {
		// Distinct per arrival so nothing short-circuits the pipeline.
		return &query.Query{
			DataSource: "flights",
			View:       query.View{Table: "flights"},
			Dims:       []query.Dim{{Col: "carrier"}},
			Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
			Filters:    []query.Filter{query.GtFilter("distance", storage.IntValue(int64(100 + i)))},
		}
	}

	// Warm phase: sequential queries seed the scheduler's service-time
	// estimator and measure what one uncontended query actually costs on
	// this host. The burst's pacing and client budget derive from that
	// measurement, not from s.Latency alone: at large scales the scan is
	// CPU-bound and the wire latency stops describing saturation.
	var svc time.Duration
	for i := 0; i < 4; i++ {
		start := time.Now()
		if _, err := p.Execute(context.Background(), burstQuery(-i)); err != nil {
			return nil, fmt.Errorf("%s: warm query: %w", arm.mode, err)
		}
		if d := time.Since(start); i > 0 { // skip the first: one-time costs
			svc += d / 3
		}
	}
	if svc < s.Latency {
		svc = s.Latency
	}
	backendBefore := srv.Stats().Queries

	// Open-loop burst: capacity is 2 conns / svc each, so 8 arrivals per
	// svc is 4x saturation. Arrivals do not wait for completions —
	// exactly the regime where closed-loop load generators flatter an
	// ungoverned system.
	const sessions = 8
	offered := 96
	interval := svc / 8
	timeout := 24 * svc
	arm.offered = offered

	var mu sync.Mutex
	var okLat, shedLat []time.Duration
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			ctx = sched.WithSession(ctx, fmt.Sprintf("user-%d", i%sessions))
			start := time.Now()
			_, err := p.Execute(ctx, burstQuery(i))
			d := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				okLat = append(okLat, d)
			case errors.Is(err, sched.ErrShed):
				shedLat = append(shedLat, d)
			default:
				arm.slowTimeouts++
			}
		}(i)
		time.Sleep(interval) //vizlint:allow sleep -- open-loop arrival pacing is the workload under test
	}
	wg.Wait()

	arm.completed = len(okLat)
	arm.shed = len(shedLat)
	arm.backend = srv.Stats().Queries - backendBefore
	if len(okLat) > 0 {
		sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
		arm.p50 = okLat[len(okLat)/2]
		arm.p99 = okLat[len(okLat)*99/100]
	}
	if len(shedLat) > 0 {
		max := shedLat[0]
		for _, d := range shedLat[1:] {
			if d > max {
				max = d
			}
		}
		arm.maxShed = ms(max)
	}
	return arm, nil
}
