package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/extract"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/opt"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

// E5ParallelPlans measures the TDE parallel execution work of Sect. 4.2:
// parallel scans, local/global aggregation, and range-partitioned
// aggregation, across degrees of parallelism.
func E5ParallelPlans(s Scale) (*Table, error) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: s.Rows, Days: 365, Seed: 55})
	if err != nil {
		return nil, err
	}
	eng := engine.New(db)
	t := &Table{
		ID:     "E5",
		Title:  fmt.Sprintf("TDE parallel plans (%d rows)", s.Rows),
		Claim:  "Exchange-based parallel plans speed up scans and aggregations; local/global aggregation reduces Exchange input; range partitioning removes the global phase when the group-by is a sort prefix",
		Header: []string{"query", "plan", "DOP", "ms", "vs serial"},
	}
	cases := []struct {
		name string
		tql  string
		// forbidRange disables range partitioning (to isolate local/global).
		forbidRange bool
	}{
		{"filtered scan + string calc", `
			(aggregate (select (table flights) (contains market "LAX"))
				(groupby carrier) (aggs (n count *)))`, true},
		{"group-by carrier (local/global)", `
			(aggregate (table flights) (groupby carrier)
				(aggs (n count *) (a avg delay) (mx max distance)))`, true},
		{"group-by date (range partition)", `
			(aggregate (table flights) (groupby date)
				(aggs (n count *) (a avg delay)))`, false},
		{"group-by date (forced local/global)", `
			(aggregate (table flights) (groupby date)
				(aggs (n count *) (a avg delay)))`, true},
		{"top-10 markets", `
			(topn (aggregate (table flights) (groupby market) (aggs (n count *)))
				10 (desc n))`, true},
	}
	dops := []int{1, 2, 4}
	if s.MaxDOP >= 8 {
		dops = append(dops, 8)
	}
	for _, c := range cases {
		var serial time.Duration
		for _, dop := range dops {
			o := opt.DefaultOptions()
			o.MaxDOP = dop
			o.GrainWork = 1 << 14
			o.DisableRangePartition = c.forbidRange
			eng.SetOptions(o)
			ctx := exec.WithConfig(context.Background(), exec.Config{ScanBatchDelay: s.ScanIODelay})
			elapsed, err := median(s.Repeat, func() error {
				_, err := eng.Query(ctx, c.tql)
				return err
			})
			if err != nil {
				return nil, err
			}
			if dop == 1 {
				serial = elapsed
			}
			planName := "serial"
			if dop > 1 {
				switch {
				case c.name == "group-by date (range partition)":
					planName = "range-partitioned"
				case c.name == "top-10 markets":
					planName = "local/global topn"
				default:
					planName = "local/global"
				}
			}
			t.Rows = append(t.Rows, []string{c.name, planName, fmt.Sprint(dop), ms(elapsed), speedup(serial, elapsed)})
		}
	}
	return t, nil
}

// E6RLEIndexScan measures Sect. 4.3: the IndexTable rewrite that turns
// selective filters on RLE columns into range-skipping scans.
func E6RLEIndexScan(s Scale) (*Table, error) {
	rows := s.Rows
	t := &Table{
		ID:     "E6",
		Title:  fmt.Sprintf("RLE index-range scans (%d rows, sorted run-length column)", rows),
		Claim:  "pushing a filter into the RLE run index skips disk ranges and significantly reduces scan cost for selective predicates; the gain shrinks as selectivity grows",
		Header: []string{"selectivity", "full-scan ms", "index-scan ms", "speedup"},
	}
	// Build a table with an RLE region column of 1000 sorted segments.
	const segments = 1000
	regionVals := make([]storage.Value, rows)
	amountVals := make([]storage.Value, rows)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < rows; i++ {
		regionVals[i] = storage.IntValue(int64(i * segments / rows))
		amountVals[i] = storage.IntValue(int64(rng.Intn(10_000)))
	}
	region, err := storage.BuildColumn("segment", storage.TInt, storage.CollBinary, regionVals, storage.BuildOptions{})
	if err != nil {
		return nil, err
	}
	amount, err := storage.BuildColumn("amount", storage.TInt, storage.CollBinary, amountVals, storage.BuildOptions{})
	if err != nil {
		return nil, err
	}
	tbl, err := storage.NewTable("Extract", "segments", []*storage.Column{region, amount})
	if err != nil {
		return nil, err
	}
	tbl.SortKey = []string{"segment"}
	db := storage.NewDatabase("rle")
	if err := db.AddTable(tbl); err != nil {
		return nil, err
	}
	eng := engine.New(db)

	for _, sel := range []struct {
		name string
		hi   int // filter keeps segments [0, hi)
	}{
		{"0.1%", 1}, {"1%", 10}, {"10%", 100}, {"50%", 500},
	} {
		tql := fmt.Sprintf(`
			(aggregate (select (table segments) (< segment %d))
				(groupby) (aggs (n count *) (total sum amount)))`, sel.hi)
		var with, without time.Duration
		for _, disable := range []bool{false, true} {
			o := opt.DefaultOptions()
			o.MaxDOP = 1
			o.DisableRLEIndex = disable
			o.RLEIndexMaxSelectivity = 0.6
			eng.SetOptions(o)
			ctx := exec.WithConfig(context.Background(), exec.Config{ScanBatchDelay: s.ScanIODelay})
			elapsed, err := median(s.Repeat, func() error {
				_, err := eng.Query(ctx, tql)
				return err
			})
			if err != nil {
				return nil, err
			}
			if disable {
				without = elapsed
			} else {
				with = elapsed
			}
		}
		t.Rows = append(t.Rows, []string{sel.name, ms(without), ms(with), speedup(without, with)})
	}
	t.Notes = append(t.Notes, "serial plans; the paper notes the rewrite can reduce parallelism, so DOP is pinned to 1 for a clean comparison")
	return t, nil
}

// E7ShadowExtract measures Sect. 4.4: per-query file parsing vs one-time
// extraction into the TDE.
func E7ShadowExtract(s Scale) (*Table, error) {
	rows := s.Rows / 6
	if rows < 5000 {
		rows = 5000
	}
	dir, err := os.MkdirTemp("", "vizq-e7")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sales.csv")
	if err := writeSalesCSV(path, rows); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("shadow extracts for text files (%d-row CSV)", rows),
		Claim:  "extracting the file into the TDE once beats re-parsing it per query as soon as more than one query runs; the one-time cost is visible at n=1",
		Header: []string{"queries", "parse-per-query ms", "shadow-extract ms", "speedup"},
	}
	tql := `(aggregate (table sales) (groupby region) (aggs (n count *) (total sum amount)))`
	for _, n := range []int{1, 2, 5, 10} {
		reparse, err := median(s.Repeat, func() error {
			for i := 0; i < n; i++ {
				if _, err := extract.QueryWithoutExtract(context.Background(), path, "sales", tql, extract.ParseOptions{}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		shadow, err := median(s.Repeat, func() error {
			mgr := extract.NewShadowManager() // fresh: includes the one-time cost
			for i := 0; i < n; i++ {
				if _, err := mgr.Query(context.Background(), path, "sales", tql, extract.ParseOptions{}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), ms(reparse), ms(shadow), speedup(reparse, shadow)})
	}
	return t, nil
}

func writeSalesCSV(path string, rows int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(17))
	regions := []string{"east", "west", "north", "south"}
	fmt.Fprintln(f, "day,region,amount")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(f, "2015-%02d-%02d,%s,%d\n",
			1+i%12, 1+i%28, regions[rng.Intn(len(regions))], rng.Intn(1000))
	}
	return nil
}

// E8DataServerTempTables measures Sect. 5.3: large-cardinality filters as
// inline IN lists vs externalized temporary tables, across repeated use.
func E8DataServerTempTables(s Scale) (*Table, error) {
	srv, err := startRemote(s.RemoteRows, remote.Config{Latency: s.Latency})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	t := &Table{
		ID:     "E8",
		Title:  "temporary tables for large filters (5 queries reusing one filter)",
		Claim:  "externalizing a large enumeration into a session temp table shrinks the repeated query text and improves response times once the filter is reused; tiny filters stay inline",
		Header: []string{"filter size", "strategy", "query text bytes", "total ms"},
	}
	const reuses = 5
	for _, size := range []int{10, 100, 1000, 5000} {
		vals := make([]storage.Value, size)
		for i := range vals {
			vals[i] = storage.IntValue(int64(i * 3))
		}
		mk := func() *query.Query {
			return &query.Query{
				View:     query.View{Table: "flights"},
				Dims:     []query.Dim{{Col: "carrier"}},
				Measures: []query.Measure{{Fn: query.Count, As: "n"}},
				Filters:  []query.Filter{query.InFilter("distance", vals...)},
			}
		}
		for _, external := range []bool{false, true} {
			opt := core.Options{DisableIntelligentCache: true, DisableLiteralCache: true}
			if external {
				opt.MaxInlineFilterValues = 9 // force externalization beyond 9
			}
			pool := connection.NewPool(srv.Addr(), connection.PoolConfig{Max: 1})
			proc := core.NewProcessor(pool, nil, nil, opt)
			textBytes := len(mk().ToTQL())
			if external && size > 9 {
				// The rewritten text joins a named temp table instead.
				rewritten := mk()
				rewritten.Filters = nil
				rewritten.View.Joins = append(rewritten.View.Joins,
					query.JoinSpec{Table: "TEMP.s0_0_filter0", LeftCol: "distance", RightCol: "val"})
				textBytes = len(rewritten.ToTQL())
			}
			elapsed, err := median(s.Repeat, func() error {
				for i := 0; i < reuses; i++ {
					if _, err := proc.Execute(context.Background(), mk()); err != nil {
						return err
					}
				}
				return nil
			})
			pool.Close()
			if err != nil {
				return nil, err
			}
			name := "inline IN list"
			if external {
				name = "temp table join"
			}
			t.Rows = append(t.Rows, []string{fmt.Sprint(size), name, fmt.Sprint(textBytes), ms(elapsed)})
		}
	}
	t.Notes = append(t.Notes, "temp table strategy re-creates the table per query here; session reuse (pool pinning) removes even that cost — see connection.Pool tests")
	return t, nil
}
