// Package experiments implements the reproduction harness: one experiment
// per performance claim in the paper (see DESIGN.md's experiment index).
// Each experiment builds its workload, runs the baseline and the improved
// configuration, and reports the same series a reader would want from the
// paper's narrative: who wins, by what factor, and where behaviour crosses
// over. cmd/benchrunner prints every table; bench_test.go wraps the same
// code in testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"vizq/internal/obs"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/workload"
)

// Scale sizes the experiments.
type Scale struct {
	// Rows is the fact table size for engine experiments.
	Rows int
	// RemoteRows is the fact table size behind the simulated remote server.
	RemoteRows int
	// Latency is the per-request latency of simulated remote servers.
	Latency time.Duration
	// Repeat is the measurement repetition count (medians are reported).
	Repeat int
	// MaxDOP bounds engine parallelism.
	MaxDOP int
	// ScanIODelay is the simulated block-read latency per scan batch (see
	// exec.Config) used by the engine-side experiments; it models the
	// disk-bound scans of the real TDE so parallelism and range skipping
	// show their intended behaviour even on single-core hosts.
	ScanIODelay time.Duration
}

// TestScale is small enough for unit tests.
func TestScale() Scale {
	return Scale{Rows: 60_000, RemoteRows: 20_000, Latency: 2 * time.Millisecond,
		Repeat: 1, MaxDOP: 4, ScanIODelay: 100 * time.Microsecond}
}

// FullScale is what cmd/benchrunner uses.
func FullScale() Scale {
	return Scale{Rows: 1_000_000, RemoteRows: 200_000, Latency: 10 * time.Millisecond,
		Repeat: 3, MaxDOP: 8, ScanIODelay: 150 * time.Microsecond}
}

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper statement under test
	Header []string
	Rows   [][]string
	Notes  []string
	// Stages is an optional per-stage latency breakdown from one traced
	// pass run after the timed measurements; tracing never runs inside a
	// measured loop, so the medians above stay comparable across runs.
	Stages string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w))
		b.WriteString("  ")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if t.Stages != "" {
		b.WriteString("stage breakdown (one traced pass, untimed):\n")
		b.WriteString(t.Stages)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(Scale) (*Table, error)
}

// All lists every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"E1", "query batch processing", E1BatchProcessing},
		{"E2", "query fusion", E2QueryFusion},
		{"E3", "concurrent connections", E3ConcurrentConnections},
		{"E4", "query caching", E4QueryCaching},
		{"E5", "TDE parallel plans", E5ParallelPlans},
		{"E6", "RLE index scans", E6RLEIndexScan},
		{"E7", "shadow extracts", E7ShadowExtract},
		{"E8", "Data Server temp tables", E8DataServerTempTables},
		{"E9", "published vs embedded extracts", E9PublishedVsEmbeddedExtracts},
		{"E10", "resilience under backend outage", E10ResilienceUnderOutage},
		{"E11", "admission control under overload", E11AdmissionControl},
		{"E12", "per-user fairness under a greedy user", E12UserFairness},
		{"E13", "cross-node admission coordination", E13ClusterCoordination},
		{"E14", "rolling restart with drain and failover", E14RollingRestart},
	}
}

// ---- shared helpers ----

// median runs f once to warm caches and allocators, then repeat more times,
// returning the median duration.
func median(repeat int, f func() error) (time.Duration, error) {
	if repeat < 1 {
		repeat = 1
	}
	if err := f(); err != nil { // warmup
		return 0, err
	}
	times := make([]time.Duration, 0, repeat)
	for i := 0; i < repeat; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2], nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

func speedup(base, other time.Duration) string {
	if other <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(other))
}

// traceOnce runs f once under a fresh tracer and returns the aggregated
// per-stage breakdown. It runs after an experiment's timed loops so the
// tracing overhead never contaminates the reported medians.
func traceOnce(f func(ctx context.Context) error) (string, error) {
	tr := obs.New()
	if err := f(obs.WithTracer(context.Background(), tr)); err != nil {
		return "", err
	}
	return obs.FormatStages(tr.Stages()), nil
}

// startRemote spins a simulated remote database over a flights dataset.
func startRemote(rows int, cfg remote.Config) (*remote.Server, error) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: rows, Days: 365, Seed: 77})
	if err != nil {
		return nil, err
	}
	srv := remote.NewServer(engine.New(db), cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	return srv, nil
}
