package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"vizq/internal/clustertest"
	"vizq/internal/sched"
)

// E14RollingRestart measures what the node-lifecycle machinery — graceful
// drain, digest-propagated draining bits, session failover, and
// probe-based re-admission — buys a fleet that has to restart its nodes
// (Sect. 4.1.4: many server processes front the same sources; taking one
// down must not take user sessions with it). Two scenario families:
//
//   - restart: a 3-node fleet restarts every node in turn while six
//     sticky dashboard sessions keep rendering. Abrupt (kill, no drain,
//     pinned sessions) surfaces every outage render as a user-visible
//     error; graceful (drain → digest tick → failover sessions move →
//     restart → undrain) completes the same rolling restart with zero.
//     Clients that dispatch at a draining node before seeing the digest
//     are shed fast with reason "draining" instead of queueing into a
//     dying process.
//   - lifecycle: an unclean kill is blamed into ejection by transport
//     errors, the fleet routes around the corpse, and after a restart
//     only a successful half-open probe — never a stray success — puts
//     the node back in rotation.
func E14RollingRestart(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "rolling restart of a 3-node fleet: abrupt vs drain+failover",
		Claim: "drain + digest propagation + session failover make a rolling restart invisible to users, and a killed node is ejected then re-admitted only via health probes",
		Header: []string{"scenario", "user errors", "renders",
			"session moves", "draining sheds", "node state"},
	}

	for _, graceful := range []bool{false, true} {
		errs, renders, moves, sheds, err := e14Rolling(s, graceful)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{e14Mode(graceful),
			fmt.Sprint(errs), fmt.Sprint(renders), fmt.Sprint(moves),
			fmt.Sprint(sheds), "-"})
	}
	ejected, readmitted, err := e14Lifecycle()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"lifecycle: unclean kill", "-", "-", "-", "-", ejected},
		[]string{"lifecycle: probe after restart", "-", "-", "-", "-", readmitted})

	t.Notes = append(t.Notes,
		"restart: each node in turn goes down for a block of renders; 6 sticky sessions (2 per node) keep rendering throughout",
		"abrupt pins sessions to their node (the pre-lifecycle world): every render against the dead node is a user-visible error",
		"graceful drains first (new sessions refused, queued work shed as \"draining\", in-flight waited out), ticks the digest so peers stop steering, and failover sessions move off before dispatch",
		"draining sheds count stragglers that raced the digest: they learn \"no\" immediately instead of queueing into a dying node, and stale-on-shed still applies to them",
		"lifecycle: ejection needs repeated blamed transport errors, re-admission needs a successful half-open probe after the cooldown — both on the harness's fake clock",
		"all scenarios run on the deterministic clustertest harness: seeded workload, fake digest/probe clock, chaos-proxy kills")
	return t, nil
}

func e14Mode(graceful bool) string {
	if graceful {
		return "restart: drain+failover"
	}
	return "restart: abrupt"
}

// e14seq makes every render distinct so caching and single-flight never
// mask an outage, across both arms.
var e14seq atomic.Int64

func e14Query() int { return int(e14seq.Add(1)) }

// e14Rolling restarts each of 3 nodes in turn under a closed loop of six
// sticky sessions and reports user-visible errors, completed renders,
// session failovers, and draining sheds. graceful selects drain + digest
// propagation + failover sessions; abrupt kills with sessions pinned.
func e14Rolling(s Scale, graceful bool) (errs, renders, moves int, sheds int64, err error) {
	cl, err := clustertest.New(clustertest.Config{
		Nodes:   3,
		Rows:    2000,
		PoolMax: 2,
		Scheduler: sched.Config{
			MaxQueue: 16, MaxUserQueue: 4, AdjustEvery: 1 << 30,
		},
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer cl.Close()
	cl.Tick()
	cl.Tick()

	// Six sticky dashboard sessions, two per node. Only the graceful arm
	// gets failover; the abrupt arm models the pre-lifecycle world.
	const perNode = 2
	var sessions []*clustertest.Session
	for n := 0; n < 3; n++ {
		for k := 0; k < perNode; k++ {
			sess, serr := cl.NewSession(fmt.Sprintf("user-%d-%d", n, k), n, graceful)
			if serr != nil {
				return 0, 0, 0, 0, serr
			}
			defer sess.Close()
			sessions = append(sessions, sess)
		}
	}
	// A "straggler" client connection per node, established up front: a
	// dispatcher that races the draining digest and lands on the node
	// anyway.
	for n := 0; n < 3; n++ {
		if qerr := cl.QueryOn(context.Background(), n, "straggler", clustertest.DistinctQuery(e14Query())); qerr != nil {
			return 0, 0, 0, 0, fmt.Errorf("e14: straggler warmup on node %d: %w", n, qerr)
		}
	}

	rounds := 2 + s.Repeat
	renderBlock := func() {
		for r := 0; r < rounds; r++ {
			for _, sess := range sessions {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				qerr := sess.Query(ctx, clustertest.DistinctQuery(e14Query()))
				cancel()
				if qerr != nil {
					errs++
				} else {
					renders++
				}
			}
		}
	}

	for down := 0; down < 3; down++ {
		if graceful {
			if derr := cl.DrainNode(context.Background(), down); derr != nil {
				return 0, 0, 0, 0, fmt.Errorf("e14: drain node %d: %w", down, derr)
			}
			cl.Tick() // the draining bit rides this digest to every balancer
			// The straggler hasn't seen the digest: it must be shed fast with
			// reason "draining", not queued into the dying node.
			qerr := cl.QueryOn(context.Background(), down, "straggler", clustertest.DistinctQuery(e14Query()))
			var se *sched.ShedError
			if !errors.As(qerr, &se) || se.Reason != "draining" {
				return 0, 0, 0, 0, fmt.Errorf("e14: straggler on draining node %d wanted a draining shed, got: %w", down, qerr)
			}
			renderBlock() // failover sessions move off the drained node pre-dispatch
			cl.KillNode(down)
			cl.RestartNode(down)
			cl.UndrainNode(down)
			cl.Tick() // cleared bit propagates; node rejoins rotation
		} else {
			cl.KillNode(down)
			renderBlock() // pinned sessions on the dead node fail every render
			cl.RestartNode(down)
			// The dead node was blamed into ejection; re-admit it for the next
			// block the only way the fleet allows — a successful probe after
			// the cooldown.
			cl.Tick()
			cl.ProbeNode(down)
		}
	}

	for _, sess := range sessions {
		moves += sess.Moves()
	}
	for i := 0; i < 3; i++ {
		sheds += cl.Scheduler(i).Stats().ShedDraining
	}
	return errs, renders, moves, sheds, nil
}

// e14Lifecycle kills a node uncleanly, drives it into ejection with
// blamed transport errors, and re-admits it with a half-open probe after
// restart. Returns the observed post-kill and post-probe states. Fully
// deterministic: immediate chaos-proxy resets and a hand-advanced probe
// clock.
func e14Lifecycle() (ejected, readmitted string, err error) {
	cl, err := clustertest.New(clustertest.Config{Nodes: 3, Rows: 2000})
	if err != nil {
		return "", "", err
	}
	defer cl.Close()
	cl.Tick()
	cl.Tick()
	if qerr := cl.QueryOn(context.Background(), 0, "probe-user", clustertest.DistinctQuery(e14Query())); qerr != nil {
		return "", "", fmt.Errorf("e14: pre-kill query: %w", qerr)
	}

	cl.KillNode(0)
	for i := 0; cl.Balancer.State(0).String() != "ejected"; i++ {
		if i > 8 {
			return "", "", fmt.Errorf("e14: node 0 not ejected after %d failed queries (state %v)", i, cl.Balancer.State(0))
		}
		if qerr := cl.QueryOn(context.Background(), 0, "probe-user", clustertest.DistinctQuery(e14Query())); qerr == nil {
			return "", "", errors.New("e14: query on killed node succeeded")
		}
	}
	ejected = cl.Balancer.State(0).String()

	// Restart alone must not re-admit: rotation waits for a probe.
	cl.RestartNode(0)
	if cl.Balancer.State(0).String() != "ejected" {
		return "", "", errors.New("e14: restart re-admitted the node without a probe")
	}
	cl.Tick() // one publish interval == the harness probe cooldown
	if !cl.ProbeNode(0) {
		return "", "", errors.New("e14: probe not admitted after cooldown")
	}
	return ejected, cl.Balancer.State(0).String(), nil
}
