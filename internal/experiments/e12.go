package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vizq/internal/cache"
	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/sched"
	"vizq/internal/tde/storage"
)

// E12UserFairness measures what one greedy user costs everyone else. The
// Data Server exists because many users share one server process
// (Sect. 5); fair queuing by *session* alone lets a user multiply their
// share by opening dashboards — with 8 sessions against three
// single-session users, flat session WRR hands the greedy user 8 of
// every 11 dequeues and the victims' latency degrades ~(8+V)/V-fold.
// Hierarchical user → session fair queuing pins every user to one share:
// the greedy user's 8 sessions split ONE turn, and a single-session
// user's latency stays within ~(1+V)/V of running uncontended.
func E12UserFairness(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "greedy user with 8 sessions vs 3 single-session users",
		Claim: "user-level fair queuing holds a single-session user's p99 near uncontended while flat session WRR degrades it with every session the greedy user opens",
		Header: []string{"mode", "victim renders", "render p50 ms", "render p99 ms",
			"p99 vs uncontended", "greedy completed"},
	}

	// All three arms run concurrently — each with its own simulated
	// backend, pool, and scheduler — and the victims' lockstep rounds
	// alternate between them. Interleaving means any host-level slowdown
	// (CPU contention, GC, a noisy neighbour) lands on every arm's
	// measurements equally instead of skewing whichever arm happened to
	// own that time window, so the cross-arm latency RATIOS stay stable.
	arms := make([]*fairnessArm, 0, 3)
	defer func() {
		for _, a := range arms {
			a.close()
		}
	}()
	for _, mode := range []fairnessMode{armBaseline, armFlat, armUser} {
		a, err := setupFairnessArm(s, mode)
		if err != nil {
			return nil, err
		}
		arms = append(arms, a)
	}

	// Victims: three single-session users rendering in lockstep rounds —
	// each round, every victim issues one dashboard render (its zone
	// queries, concurrently, into its session queue) at the same instant,
	// and the next round starts when all three renders complete, so every
	// arm (including the uncontended baseline) measures the same
	// three-way victim workload. The measured unit is the render: per WRR
	// pass the greedy user adds a fixed number of dequeues ahead of the
	// victims (1 hierarchical, 8 flat), so render latency scales with the
	// active queue count and in-flight residuals amortize across the
	// render. Renders are collected in 3 independent blocks and the
	// reported p50/p99 are the MEDIAN across blocks: a host stall lands
	// in one block and is rejected, while genuine queueing delay —
	// present in every block — survives.
	// The "vs uncontended" column is PAIRED: each round's median contended
	// render is divided by the SAME round's median uncontended render, so
	// a slow patch on the host inflates numerator and denominator together
	// and falls out of the ratio, and the median-of-three absorbs a
	// single render spiked by the OS scheduler. The per-arm ms columns
	// stay absolute.
	const blocks = 3
	blockRounds := 2 + 2*s.Repeat
	for r := 0; r < 2+blocks*blockRounds; r++ {
		var baseRound []time.Duration
		for i, a := range arms {
			lats := a.victimRound()
			if r < 2 { // rounds 0-1 warm the pools and estimator
				continue
			}
			sort.Slice(lats, func(x, y int) bool { return lats[x] < lats[y] })
			if i == 0 {
				if len(lats) == 0 {
					break // no uncontended floor this round; skip it whole
				}
				baseRound = lats
			}
			b := (r - 2) / blockRounds
			a.blockLat[b] = append(a.blockLat[b], lats...)
			if i > 0 && len(lats) > 0 {
				a.blockRatio[b] = append(a.blockRatio[b],
					float64(lats[len(lats)/2])/float64(baseRound[len(baseRound)/2]))
			}
		}
	}

	for i, a := range arms {
		a.stopGreedy()
		a.greedyWG.Wait()
		var p50s, p99s []time.Duration
		var r99s []float64
		for b, lat := range a.blockLat {
			if len(lat) == 0 {
				return nil, fmt.Errorf("e12 %s: a measurement block completed no renders", a.mode)
			}
			a.victimQueries += len(lat)
			sort.Slice(lat, func(x, y int) bool { return lat[x] < lat[y] })
			p50s = append(p50s, lat[len(lat)/2])
			p99s = append(p99s, lat[len(lat)*99/100])
			if i > 0 {
				rs := a.blockRatio[b]
				sort.Float64s(rs)
				r99s = append(r99s, rs[len(rs)*99/100])
			}
		}
		sort.Slice(p50s, func(x, y int) bool { return p50s[x] < p50s[y] })
		sort.Slice(p99s, func(x, y int) bool { return p99s[x] < p99s[y] })
		a.p50 = p50s[len(p50s)/2]
		a.p99 = p99s[len(p99s)/2]

		ratio := "-"
		if i > 0 {
			sort.Float64s(r99s)
			ratio = fmt.Sprintf("%.2fx", r99s[len(r99s)/2])
		}
		t.Rows = append(t.Rows, []string{a.mode, fmt.Sprint(a.victimQueries),
			ms(a.p50), ms(a.p99), ratio, fmt.Sprint(a.greedyDone.Load())})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("3 victims render (%d zone queries each) in lockstep rounds; the greedy user keeps %d closed-loop queries outstanding across %d sessions",
			e12RenderZones, e12GreedySessions*e12WorkersPerSess, e12GreedySessions),
		"flat session WRR = every session is its own fair-queuing principal (the pre-hierarchy behavior, emulated by tagging each greedy session as a distinct user)",
		"arms run concurrently on separate backends and rounds alternate between them; 'p99 vs uncontended' divides each round's median render by the same round's uncontended median (then p99 per block, median across 3 blocks), so host-level noise cancels out of the ratio",
		"scheduler Limit=pool Max=2 pinned, caches and single-flight disabled so every render reaches admission",
		"share math: per WRR pass the victims take 3 dequeues and the greedy user takes 1 (hierarchical) or 8 (flat), so render cost scales (3+1)/3 = 1.3x and (3+8)/3 = 3.7x the uncontended floor")
	return t, nil
}

type fairnessMode int

const (
	armBaseline fairnessMode = iota // victims only: the uncontended floor
	armFlat                         // greedy present, per-session principals
	armUser                         // greedy present, hierarchical user WRR
)

type fairnessArm struct {
	mode          string
	p             *core.Processor
	distinct      func() *query.Query
	close         func()
	stopGreedy    context.CancelFunc
	greedyWG      sync.WaitGroup
	greedyDone    atomic.Int64
	blockLat      [][]time.Duration
	blockRatio    [][]float64
	victimQueries int
	p50, p99      time.Duration
}

const (
	e12Victims        = 3
	e12GreedySessions = 8
	e12WorkersPerSess = 2
	e12RenderZones    = 8 // concurrent zone queries per victim render
)

// setupFairnessArm builds one arm's stack — simulated backend, 2-conn
// pool, pinned scheduler — and, for the contended arms, starts the greedy
// user's closed-loop sessions and waits for their backlog to establish.
func setupFairnessArm(s Scale, mode fairnessMode) (*fairnessArm, error) {
	// Service time must be dominated by the deterministic simulated wire
	// latency, not scan CPU, so the fair-share ratios are stable on any
	// host: modest rows, a latency floor.
	rows := s.RemoteRows
	if rows > 256 {
		rows = 256
	}
	lat := s.Latency
	if lat < 4*time.Millisecond {
		lat = 4 * time.Millisecond
	}
	srv, err := startRemote(rows, remote.Config{Latency: lat})
	if err != nil {
		return nil, err
	}
	pool := connection.NewPool(srv.Addr(), connection.PoolConfig{Max: 2})

	opt := core.DefaultOptions()
	opt.DisableIntelligentCache = true
	opt.DisableLiteralCache = true
	opt.DisableSingleFlight = true
	// Limit pinned to the pool size (as in E11): the experiment measures
	// queue discipline, not the governor.
	sc := sched.New(sched.Config{Limit: 2, MinLimit: 2, MaxLimit: 2})
	opt.Scheduler = sc
	p := core.NewProcessor(pool, cache.NewIntelligentCache(cache.DefaultOptions()),
		cache.NewLiteralCache(cache.DefaultOptions()), opt)

	var qseq atomic.Int64
	greedyCtx, stopGreedy := context.WithCancel(context.Background())
	arm := &fairnessArm{
		p:          p,
		stopGreedy: stopGreedy,
		blockLat:   make([][]time.Duration, 3),
		blockRatio: make([][]float64, 3),
		distinct: func() *query.Query {
			// Distinct per arrival so nothing short-circuits the pipeline.
			return &query.Query{
				DataSource: "flights",
				View:       query.View{Table: "flights"},
				Dims:       []query.Dim{{Col: "carrier"}},
				Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
				Filters:    []query.Filter{query.GtFilter("distance", storage.IntValue(100+qseq.Add(1)))},
			}
		},
		close: func() {
			stopGreedy()
			pool.Close()
			srv.Close()
		},
	}
	switch mode {
	case armBaseline:
		arm.mode = "uncontended (victims only)"
	case armFlat:
		arm.mode = "flat session WRR"
	case armUser:
		arm.mode = "user-level WRR"
	}
	if mode == armBaseline {
		return arm, nil
	}
	// The greedy user: 8 sessions, 2 closed-loop workers each, so every
	// greedy session holds a queued query at all times. Under armFlat
	// each session is tagged as its own user — exactly the share the
	// old flat scheduler handed out; under armUser all 8 share one.
	for sess := 0; sess < e12GreedySessions; sess++ {
		user := "greedy"
		if mode == armFlat {
			user = fmt.Sprintf("greedy-s%d", sess)
		}
		ctx := sched.WithUser(greedyCtx, user)
		ctx = sched.WithSession(ctx, fmt.Sprintf("g%d", sess))
		for w := 0; w < e12WorkersPerSess; w++ {
			arm.greedyWG.Add(1)
			go func(ctx context.Context) {
				defer arm.greedyWG.Done()
				for ctx.Err() == nil {
					if _, err := p.Execute(ctx, arm.distinct()); err == nil {
						arm.greedyDone.Add(1)
					}
				}
			}(ctx)
		}
	}
	// Let the greedy backlog establish before measuring: every slot
	// taken and a deep queue behind it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := sc.Stats()
		if st.Queued >= e12GreedySessions {
			break
		}
		if time.Now().After(deadline) {
			arm.close()
			arm.greedyWG.Wait()
			return nil, fmt.Errorf("e12 %s: greedy backlog never formed: %+v", arm.mode, st)
		}
		time.Sleep(200 * time.Microsecond) //vizlint:allow sleep -- polling for workload steady state
	}
	return arm, nil
}

// victimRound runs one lockstep round — each victim issues one render of
// e12RenderZones concurrent zone queries — and returns the render
// durations of the victims whose renders fully succeeded.
func (a *fairnessArm) victimRound() []time.Duration {
	var mu sync.Mutex
	var lats []time.Duration
	var wg sync.WaitGroup
	for v := 0; v < e12Victims; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			ctx := sched.WithUser(context.Background(), fmt.Sprintf("victim-%d", v))
			ctx = sched.WithSession(ctx, "main")
			start := time.Now()
			var zones sync.WaitGroup
			var failed atomic.Bool
			for z := 0; z < e12RenderZones; z++ {
				zones.Add(1)
				go func() {
					defer zones.Done()
					if _, err := a.p.Execute(ctx, a.distinct()); err != nil {
						failed.Store(true)
					}
				}()
			}
			zones.Wait()
			d := time.Since(start)
			if failed.Load() {
				return
			}
			mu.Lock()
			lats = append(lats, d)
			mu.Unlock()
		}(v)
	}
	wg.Wait()
	return lats
}
