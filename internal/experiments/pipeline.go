package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vizq/internal/cache"
	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/kvstore"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

func newPipeline(addr string, poolSize int, opt core.Options) (*core.Processor, *connection.Pool) {
	pool := connection.NewPool(addr, connection.PoolConfig{Max: poolSize})
	return core.NewProcessor(pool, nil, nil, opt), pool
}

// fig3Batch builds a batch shaped like the paper's Fig. 3 cache-hit
// opportunity graph: a few broad source queries and several queries
// derivable from them.
func fig3Batch() []*query.Query {
	flights := query.View{Table: "flights"}
	count := []query.Measure{{Fn: query.Count, As: "n"}}
	return []*query.Query{
		// q1: broad carrier x origin aggregate (a source node).
		{View: flights, Dims: []query.Dim{{Col: "carrier"}, {Col: "origin"}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}, {Fn: query.Sum, Col: "distance", As: "dist"}}},
		// q2: derivable roll-up of q1.
		{View: flights, Dims: []query.Dim{{Col: "carrier"}}, Measures: count},
		// q3: derivable filter of q1.
		{View: flights, Dims: []query.Dim{{Col: "origin"}}, Measures: count,
			Filters: []query.Filter{query.InFilter("carrier", storage.StrValue("WN"), storage.StrValue("AA"))}},
		// q4: derivable roll-up of q1 to origin.
		{View: flights, Dims: []query.Dim{{Col: "origin"}}, Measures: count},
		// q5: independent source: dest breakdown.
		{View: flights, Dims: []query.Dim{{Col: "dest"}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}, {Fn: query.Avg, Col: "delay", As: "avgdelay"}}},
		// q6: derivable from q5 (projection restriction).
		{View: flights, Dims: []query.Dim{{Col: "dest"}}, Measures: count},
		// q7: independent source: daily counts.
		{View: flights, Dims: []query.Dim{{Col: "date"}}, Measures: count},
		// q8: derivable filter of q7.
		{View: flights, Dims: []query.Dim{{Col: "date"}}, Measures: count,
			Filters: []query.Filter{query.RangeFilter("date", storage.DateValue(2015, 3, 1), storage.DateValue(2015, 6, 30))}},
	}
}

// E1BatchProcessing measures two-phase batch processing (Sect. 3.3): serial
// submission vs concurrent submission with the cache-graph partition.
func E1BatchProcessing(s Scale) (*Table, error) {
	srv, err := startRemote(s.RemoteRows, remote.Config{Latency: s.Latency})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	t := &Table{
		ID:     "E1",
		Title:  "query batch processing (Fig. 3 batch, 8 queries)",
		Claim:  "partitioning the batch by cache-hit opportunities and submitting remote queries concurrently reduces dashboard latency vs one-by-one execution",
		Header: []string{"strategy", "remote queries", "batch ms", "vs serial"},
	}
	type variant struct {
		name string
		opt  core.Options
		pool int
	}
	variants := []variant{
		{"serial, no cache partition", core.Options{DisableBatchConcurrency: true, DisableIntelligentCache: true, DisableLiteralCache: true, DisableFusion: true}, 1},
		{"concurrent, no cache partition", core.Options{DisableIntelligentCache: true, DisableLiteralCache: true, DisableFusion: true}, 8},
		{"concurrent + cache partition", core.Options{DisableFusion: true}, 8},
		{"concurrent + partition + fusion", core.DefaultOptions(), 8},
	}
	var serialTime time.Duration
	for i, v := range variants {
		before := srv.Stats().Queries
		elapsed, err := median(s.Repeat, func() error {
			// Fresh caches per repetition: rebuild the processor.
			proc, pool := newPipeline(srv.Addr(), v.pool, v.opt)
			defer pool.Close()
			_, err := proc.ExecuteBatch(context.Background(), fig3Batch())
			return err
		})
		if err != nil {
			return nil, err
		}
		sent := (srv.Stats().Queries - before) / int64(maxI(1, s.Repeat)+1) // +1: the warmup run
		if i == 0 {
			serialTime = elapsed
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprint(sent), ms(elapsed), speedup(serialTime, elapsed)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("remote latency %v, backend rows %d", s.Latency, s.RemoteRows))
	stages, err := traceOnce(func(ctx context.Context) error {
		proc, pool := newPipeline(srv.Addr(), 8, core.DefaultOptions())
		defer pool.Close()
		_, err := proc.ExecuteBatch(ctx, fig3Batch())
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Stages = stages
	return t, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E2QueryFusion measures Sect. 3.4: fusing projection-variant queries.
func E2QueryFusion(s Scale) (*Table, error) {
	srv, err := startRemote(s.RemoteRows, remote.Config{Latency: s.Latency})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	t := &Table{
		ID:     "E2",
		Title:  "query fusion (k projection variants over one relation)",
		Claim:  "replacing k same-relation queries with one query over the union of projections cuts both query count and total time",
		Header: []string{"k", "strategy", "remote queries", "batch ms", "vs unfused"},
	}
	measures := []query.Measure{
		{Fn: query.Count, As: "n"},
		{Fn: query.Sum, Col: "distance", As: "dist"},
		{Fn: query.Min, Col: "delay", As: "mind"},
		{Fn: query.Max, Col: "delay", As: "maxd"},
		{Fn: query.Sum, Col: "hour", As: "hsum"},
		{Fn: query.Min, Col: "distance", As: "mindist"},
		{Fn: query.Max, Col: "distance", As: "maxdist"},
		{Fn: query.Count, Col: "delay", As: "nd"},
	}
	for _, k := range []int{2, 4, 8} {
		batch := make([]*query.Query, k)
		for i := 0; i < k; i++ {
			batch[i] = &query.Query{
				View:     query.View{Table: "flights"},
				Dims:     []query.Dim{{Col: "market"}},
				Measures: []query.Measure{measures[i%len(measures)]},
			}
		}
		var unfusedTime time.Duration
		for _, fused := range []bool{false, true} {
			opt := core.Options{DisableIntelligentCache: true, DisableLiteralCache: true, DisableFusion: !fused}
			before := srv.Stats().Queries
			elapsed, err := median(s.Repeat, func() error {
				proc, pool := newPipeline(srv.Addr(), 8, opt)
				defer pool.Close()
				_, err := proc.ExecuteBatch(context.Background(), batch)
				return err
			})
			if err != nil {
				return nil, err
			}
			sent := (srv.Stats().Queries - before) / int64(maxI(1, s.Repeat)+1) // +1: the warmup run
			name := "unfused"
			if fused {
				name = "fused"
			} else {
				unfusedTime = elapsed
			}
			t.Rows = append(t.Rows, []string{fmt.Sprint(k), name, fmt.Sprint(sent), ms(elapsed), speedup(unfusedTime, elapsed)})
		}
	}
	return t, nil
}

// E3ConcurrentConnections measures Sect. 3.5: multiple pooled connections
// against backends with different execution models.
func E3ConcurrentConnections(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "concurrent query execution over multiple connections",
		Claim:  "using multiple connections to handle concurrent workloads boosts performance across backend architectures, when idle resources exist; backend throttles bound the gain",
		Header: []string{"backend", "pool size", "batch ms", "vs 1 conn"},
	}
	io := s.ScanIODelay
	backends := []struct {
		name string
		cfg  remote.Config
	}{
		{"thread-per-query", remote.Config{Latency: s.Latency, QueryDOP: 1, ScanBatchDelay: io}},
		{"parallel plans (DOP 4)", remote.Config{Latency: s.Latency, QueryDOP: 4, ScanBatchDelay: io}},
		{"throttled (max 2 concurrent)", remote.Config{Latency: s.Latency, QueryDOP: 1, MaxConcurrent: 2, ScanBatchDelay: io}},
	}
	batch := make([]*query.Query, 8)
	dims := []string{"carrier", "origin", "dest", "market", "hour", "date", "cancelled", "distance"}
	for i := range batch {
		batch[i] = &query.Query{
			View:     query.View{Table: "flights"},
			Dims:     []query.Dim{{Col: dims[i]}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}, {Fn: query.Avg, Col: "delay", As: "a"}},
		}
	}
	for _, b := range backends {
		srv, err := startRemote(s.RemoteRows, b.cfg)
		if err != nil {
			return nil, err
		}
		var base time.Duration
		for _, poolSize := range []int{1, 2, 4, 8} {
			opt := core.Options{DisableIntelligentCache: true, DisableLiteralCache: true, DisableFusion: true}
			elapsed, err := median(s.Repeat, func() error {
				proc, pool := newPipeline(srv.Addr(), poolSize, opt)
				defer pool.Close()
				_, err := proc.ExecuteBatch(context.Background(), batch)
				return err
			})
			if err != nil {
				srv.Close()
				return nil, err
			}
			if poolSize == 1 {
				base = elapsed
			}
			t.Rows = append(t.Rows, []string{b.name, fmt.Sprint(poolSize), ms(elapsed), speedup(base, elapsed)})
		}
		if t.Stages == "" {
			// One traced pass on the first backend at full pool width shows
			// where batch time goes (pool wait vs remote round-trips).
			stages, err := traceOnce(func(ctx context.Context) error {
				proc, pool := newPipeline(srv.Addr(), 8,
					core.Options{DisableIntelligentCache: true, DisableLiteralCache: true, DisableFusion: true})
				defer pool.Close()
				_, err := proc.ExecuteBatch(ctx, batch)
				return err
			})
			if err != nil {
				srv.Close()
				return nil, err
			}
			t.Stages = stages
		}
		srv.Close()
	}
	return t, nil
}

// E4QueryCaching measures Sect. 3.2: cache levels across a multi-user
// dashboard interaction sequence on two server nodes.
func E4QueryCaching(s Scale) (*Table, error) {
	srv, err := startRemote(s.RemoteRows, remote.Config{Latency: s.Latency})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	store := kvstore.NewStore(256 << 20)
	kvSrv, err := kvstore.Serve("127.0.0.1:0", store)
	if err != nil {
		return nil, err
	}
	defer kvSrv.Close()

	t := &Table{
		ID:     "E4",
		Title:  "query caching across users and interactions (2 nodes x 3 users)",
		Claim:  "the intelligent cache answers identical and subsumed requests locally; the distributed layer keeps results warm regardless of which node serves a request",
		Header: []string{"cache mode", "backend queries", "total ms", "vs none"},
	}

	// The interaction sequence of one user: initial load (broad queries),
	// then filter interactions answerable by subsumption.
	userQueries := func() []*query.Query {
		flights := query.View{Table: "flights"}
		broad := &query.Query{View: flights,
			Dims:     []query.Dim{{Col: "carrier"}, {Col: "origin"}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}, {Fn: query.Sum, Col: "distance", As: "dist"}}}
		var seq []*query.Query
		seq = append(seq, broad)
		for _, c := range workload.CarrierCodes(4) {
			q := broad.Clone()
			q.Dims = []query.Dim{{Col: "origin"}}
			q.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue(c))}
			seq = append(seq, q)
		}
		seq = append(seq, &query.Query{View: flights, Dims: []query.Dim{{Col: "carrier"}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}}})
		return seq
	}

	type mode struct {
		name        string
		mk          func(node int) *core.Processor
		perUserNode bool
	}
	mkPool := func(size int) *connection.Pool {
		return connection.NewPool(srv.Addr(), connection.PoolConfig{Max: size})
	}
	modes := []mode{
		{"no caching", func(int) *core.Processor {
			return core.NewProcessor(mkPool(4), nil, nil,
				core.Options{DisableIntelligentCache: true, DisableLiteralCache: true})
		}, false},
		{"literal only", func(int) *core.Processor {
			return core.NewProcessor(mkPool(4), nil, nil, core.Options{DisableIntelligentCache: true})
		}, false},
		{"intelligent (per node)", func(int) *core.Processor {
			return core.NewProcessor(mkPool(4), nil, nil, core.Options{})
		}, false},
		{"intelligent + distributed", func(int) *core.Processor {
			cl, err := kvstore.Dial(kvSrv.Addr())
			if err != nil {
				return core.NewProcessor(mkPool(4), nil, nil, core.Options{})
			}
			dist := cache.NewDistributed(cache.NewIntelligentCache(cache.DefaultOptions()), cl, time.Minute)
			return core.NewProcessor(mkPool(4), dist, nil, core.Options{})
		}, false},
	}

	var base time.Duration
	for mi, m := range modes {
		before := srv.Stats().Queries
		start := time.Now()
		// Two nodes; three users round-robin across them. Per-node caches
		// are fresh each mode.
		nodes := []*core.Processor{m.mk(0), m.mk(1)}
		for user := 0; user < 3; user++ {
			proc := nodes[user%2]
			for _, q := range userQueries() {
				if _, err := proc.Execute(context.Background(), q); err != nil {
					return nil, err
				}
			}
		}
		elapsed := time.Since(start)
		sent := srv.Stats().Queries - before
		if mi == 0 {
			base = elapsed
		}
		t.Rows = append(t.Rows, []string{m.name, fmt.Sprint(sent), ms(elapsed), speedup(base, elapsed)})
	}
	// Correlated-miss phase (thundering herd): many sessions render the
	// same fresh dashboard at once, so identical queries miss the cache
	// concurrently. Without coalescing every session pays a remote
	// round-trip; single-flight collapses the duplicates to ~1 remote
	// execution per distinct query.
	const herdUsers = 8
	distinct := fig3Batch()[:4]
	for _, sf := range []bool{false, true} {
		name := fmt.Sprintf("correlated miss x%d, no single-flight", herdUsers)
		opt := core.Options{DisableIntelligentCache: true, DisableLiteralCache: true, DisableSingleFlight: true}
		if sf {
			name = fmt.Sprintf("correlated miss x%d, single-flight", herdUsers)
			opt.DisableSingleFlight = false
		}
		proc, pool := newPipeline(srv.Addr(), herdUsers*len(distinct), opt)
		before := srv.Stats().Queries
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, herdUsers*len(distinct))
		release := make(chan struct{})
		for u := 0; u < herdUsers; u++ {
			for qi, q := range distinct {
				wg.Add(1)
				go func(slot int, q *query.Query) {
					defer wg.Done()
					<-release // all sessions fire at once
					_, err := proc.Execute(context.Background(), q)
					errs[slot] = err
				}(u*len(distinct)+qi, q)
			}
		}
		close(release)
		wg.Wait()
		pool.Close()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		sent := srv.Stats().Queries - before
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(sent), ms(time.Since(start)), "-"})
	}

	t.Notes = append(t.Notes,
		"each user issues 1 broad query + 4 filter drills + 1 roll-up; drills and roll-ups are subsumed by the broad query",
		fmt.Sprintf("correlated-miss phase: %d sessions issue the same %d distinct queries concurrently (caches off to isolate coalescing); single-flight should cut backend queries from %d toward %d",
			herdUsers, len(distinct), herdUsers*len(distinct), len(distinct)))
	stages, err := traceOnce(func(ctx context.Context) error {
		// One user's full sequence on a fresh intelligent-cache node: the
		// breakdown shows one remote round-trip and cache-probe answers for
		// the subsumed drills.
		proc := core.NewProcessor(mkPool(4), nil, nil, core.Options{})
		for _, q := range userQueries() {
			if _, err := proc.Execute(ctx, q); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Stages = stages
	return t, nil
}
