package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vizq/internal/cache"
	"vizq/internal/chaos"
	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/resilience"
)

// E10ResilienceUnderOutage measures what a mid-workload backend outage
// costs the user with and without the resilience layer. The paper's Data
// Server sits in front of dozens of customer-operated databases (Sect. 5)
// whose outages Tableau cannot prevent — it can only decide whether each
// one becomes a spinner followed by an error dialog, or a fast, visibly
// degraded answer. Baseline: every query during the outage burns its full
// client timeout and fails. Resilient: retries absorb blips, the circuit
// breaker converts the steady-state outage into microsecond fast-fails,
// and expired-but-in-grace cache entries are served stale instead of
// erroring.
func E10ResilienceUnderOutage(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "backend outage mid-workload: resilience off vs on",
		Claim: "retry + circuit breaker + stale-on-error turn an outage's error storm into degraded-but-instant answers (>=10x fewer user-visible errors)",
		Header: []string{"mode", "outage queries", "errors", "p50 ms", "p99 ms",
			"stale served", "breaker fast-fails", "recovered"},
	}

	base, err := runOutageArm(s, nil)
	if err != nil {
		return nil, err
	}
	res, err := runOutageArm(s, &resilience.Config{
		MaxAttempts:         2,
		BaseBackoff:         5 * time.Millisecond,
		MaxBackoff:          10 * time.Millisecond,
		AttemptTimeout:      40 * time.Millisecond,
		Seed:                10,
		BreakerWindow:       8,
		BreakerMinSamples:   2,
		BreakerFailureRatio: 0.5,
		BreakerOpenFor:      200 * time.Millisecond,
		ServeStale:          true,
	})
	if err != nil {
		return nil, err
	}
	for _, arm := range []*outageArm{base, res} {
		t.Rows = append(t.Rows, []string{arm.mode, fmt.Sprint(arm.queries),
			fmt.Sprint(arm.errors), ms(arm.p50), ms(arm.p99),
			fmt.Sprint(arm.staleServed), arm.fastFails, fmt.Sprint(arm.recovered)})
	}
	t.Notes = append(t.Notes,
		"outage = chaos proxy black-holes every connection (Stall) and cuts in-flight relays; client timeout 120ms per query",
		"resilient arm: 2 attempts x 40ms attempt budget, breaker opens after 2 failures, expired cache entries served within their grace window")
	t.Stages = "baseline during outage (full timeout wait):\n" + base.stages +
		"resilient during outage (breaker fast-fail + stale serve):\n" + res.stages
	return t, nil
}

type outageArm struct {
	mode        string
	queries     int
	errors      int
	p50, p99    time.Duration
	staleServed int64
	fastFails   string
	recovered   bool
	stages      string
}

// runOutageArm runs one warm/outage/heal cycle against a chaos proxy.
func runOutageArm(s Scale, rcfg *resilience.Config) (*outageArm, error) {
	srv, err := startRemote(s.RemoteRows, remote.Config{Latency: s.Latency})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	proxy, err := chaos.New(srv.Addr(), chaos.Healthy())
	if err != nil {
		return nil, err
	}
	defer proxy.Close()
	pool := connection.NewPool(proxy.Addr(), connection.PoolConfig{Max: 2})
	defer pool.Close()

	copt := cache.DefaultOptions()
	copt.FreshFor = 40 * time.Millisecond // entries expire before the outage...
	copt.StaleGrace = time.Minute         // ...but stay servable throughout it
	opt := core.DefaultOptions()
	opt.Resilience = rcfg
	p := core.NewProcessor(pool, cache.NewIntelligentCache(copt), cache.NewLiteralCache(copt), opt)

	arm := &outageArm{mode: "baseline (no resilience)", fastFails: "-"}
	if rcfg != nil {
		arm.mode = "resilient (retry+breaker+stale)"
	}

	// Warm phase: one successful query populates the caches.
	const clientTimeout = 120 * time.Millisecond
	runOne := func() (bool, time.Duration) {
		ctx, cancel := context.WithTimeout(context.Background(), clientTimeout)
		defer cancel()
		start := time.Now()
		_, err := p.Execute(ctx, outageQuery())
		return err == nil, time.Since(start)
	}
	if ok, _ := runOne(); !ok {
		return nil, fmt.Errorf("%s: warm query failed", arm.mode)
	}
	time.Sleep(60 * time.Millisecond) //vizlint:allow sleep -- let the warm entry age past FreshFor into its grace window

	// Outage phase: the backend goes dark mid-workload.
	proxy.SetMode(chaos.Fault{Kind: chaos.Stall})
	proxy.KillActive()
	const outageQueries = 8
	arm.queries = outageQueries
	lat := make([]time.Duration, 0, outageQueries)
	for i := 0; i < outageQueries; i++ {
		ok, d := runOne()
		if !ok {
			arm.errors++
		}
		lat = append(lat, d)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	arm.p50 = lat[len(lat)/2]
	arm.p99 = lat[len(lat)-1]

	// One traced pass while the outage (and, in the resilient arm, the open
	// breaker) is still in effect: this is where the breaker's fast-fail is
	// visibly cheaper than the baseline's full timeout wait.
	arm.stages, err = traceOnce(func(ctx context.Context) error {
		tctx, cancel := context.WithTimeout(ctx, clientTimeout)
		defer cancel()
		p.Execute(tctx, outageQuery()) // outage errors are the expected outcome here
		return nil
	})
	if err != nil {
		return nil, err
	}

	st := p.Stats()
	arm.staleServed = st.StaleServed
	if rs := p.Resilience(); rs != nil {
		arm.fastFails = fmt.Sprint(rs.Breaker().Stats().FastFails)
	}

	// Heal phase: the backend returns; the breaker's cooldown elapses and a
	// probe closes it. Both arms must serve fresh again.
	proxy.Heal()
	time.Sleep(250 * time.Millisecond) //vizlint:allow sleep -- outlive BreakerOpenFor so the half-open probe runs
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	fresh, err := p.Execute(ctx, outageQuery())
	arm.recovered = err == nil && fresh != nil && !fresh.Stale && fresh.N > 0
	return arm, nil
}

func outageQuery() *query.Query {
	return &query.Query{
		DataSource: "flights",
		View:       query.View{Table: "flights"},
		Dims:       []query.Dim{{Col: "carrier"}},
		Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
	}
}
