package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vizq/internal/clustertest"
	"vizq/internal/kvstore"
	"vizq/internal/sched"
)

// E13ClusterCoordination measures what cross-node admission coordination
// buys a multi-node Data Server fleet over per-node-only admission
// (Sect. 5: many server processes share the same sources, but each
// process admits in isolation). Three scenarios, each run per-node-only
// and coordinated:
//
//   - steering: one node is saturated by a hot user whose sessions are
//     sticky to it. Per-node-only, the balancer round-robins victims
//     into the swamped node and a third of their renders queue behind
//     the hot backlog; coordinated, the node's published digest routes
//     victims to calm capacity and their p99 drops. A minority of
//     pressured nodes must NOT trigger fleet-wide shedding.
//   - majority: the hot user saturates 2 of 3 nodes and keeps a
//     foothold on the third that fits under its local queue bounds.
//     Per-node-only, the calm node never sheds the hot user —
//     inconsistent fleet behaviour; coordinated, the majority clamp
//     sheds the hot user's overflow on all 3 nodes.
//   - convergence: nodes start with divergent AIMD limits {1,4,2} for
//     the same source. Per-node-only they stay divergent (spread 3);
//     coordinated, each ObservePeers nudges one step toward the fleet
//     mean and the spread closes to <=1.
func E13ClusterCoordination(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "per-node-only vs coordinated admission across a 3-node fleet",
		Claim: "digest coordination steers victims away from hot nodes (better p99), sheds a majority-hot source consistently on every node, and converges divergent limits",
		Header: []string{"scenario", "hot sheds on", "cluster sheds",
			"victim renders", "victim p50 ms", "victim p99 ms", "limit spread"},
	}

	for _, coordinate := range []bool{false, true} {
		renders, p50, p99, clusterSheds, err := e13Steering(s, coordinate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{e13Mode("steer", coordinate), "-",
			fmt.Sprint(clusterSheds), fmt.Sprint(renders), ms(p50), ms(p99), "-"})
	}
	for _, coordinate := range []bool{false, true} {
		nodesShedding, clusterSheds, err := e13Majority(s, coordinate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{e13Mode("majority", coordinate),
			fmt.Sprintf("%d/3", nodesShedding), fmt.Sprint(clusterSheds), "-", "-", "-", "-"})
	}
	for _, coordinate := range []bool{false, true} {
		spread, err := e13Convergence(coordinate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{e13Mode("converge", coordinate),
			"-", "-", "-", "-", "-", fmt.Sprint(spread)})
	}
	t.Notes = append(t.Notes,
		"steer: 8 sticky hot sessions saturate node 0; 3 victims dispatch through the balancer each round; p50/p99 are per-block percentiles, median of 3 blocks",
		"steer coordinated shows cluster sheds = 0: one pressured node is a minority, so coordination steers but never clamps (advisory, not consensus)",
		"majority: hot saturates nodes 0-1 and keeps 3 closed-loop sessions on node 2, exactly at node 2's local queue bounds — only the majority clamp makes node 2 shed it",
		"converge: limits start {1,4,2} with the local governor frozen; each coordinated ObservePeers moves a node one step toward the fleet mean",
		"all scenarios run on the deterministic clustertest harness: fake digest clock, per-node kvstore links, seeded workloads")
	return t, nil
}

func e13Mode(scenario string, coordinate bool) string {
	if coordinate {
		return scenario + ": coordinated"
	}
	return scenario + ": per-node only"
}

// e13seq makes every query in the experiment distinct so caching and
// single-flight never short-circuit admission, across all arms.
var e13seq atomic.Int64

func e13Query() int { return int(e13seq.Add(1)) }

// e13Latency pins service time to a wire-latency floor so queue-position
// arithmetic, not scan CPU, decides the measured percentiles.
func e13Latency(s Scale) time.Duration {
	if s.Latency < 5*time.Millisecond {
		return 5 * time.Millisecond
	}
	return s.Latency
}

// e13HotLoad starts closed-loop hot-user workers pinned to node idx
// (sticky sessions) and returns a stop func plus the per-node shed
// counter. Workers back off briefly after a shed so a clamped node is
// probed continuously without spinning.
func e13HotLoad(cl *clustertest.Cluster, idx, workers int, lat time.Duration, sheds *atomic.Int64) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				qctx, qcancel := context.WithTimeout(ctx, 2*time.Second)
				err := cl.QueryOn(qctx, idx, "hot", clustertest.DistinctQuery(e13Query()))
				qcancel()
				if errors.Is(err, sched.ErrShed) {
					sheds.Add(1)
					time.Sleep(lat / 4) //vizlint:allow sleep -- shed backoff keeps the closed loop from spinning
				}
			}
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// e13WaitFor polls cond with a deadline; experiments fail loudly rather
// than hang when a workload never reaches steady state.
func e13WaitFor(what string, cond func() bool) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(200 * time.Microsecond) //vizlint:allow sleep -- polling for workload steady state
	}
	return fmt.Errorf("e13: %s not reached in time", what)
}

// e13Steering: node 0 saturated by sticky hot sessions, victims
// dispatched through the balancer. Returns the victims' completed render
// count, p50/p99 (median across 3 measurement blocks), and the fleet's
// cluster-pressure shed total (which must stay 0: one hot node is a
// minority).
func e13Steering(s Scale, coordinate bool) (renders int, p50, p99 time.Duration, clusterSheds int64, err error) {
	lat := e13Latency(s)
	cl, err := clustertest.New(clustertest.Config{
		Nodes:   3,
		Rows:    2000,
		PoolMax: 2,
		Scheduler: sched.Config{
			MaxQueue: 16, MaxUserQueue: 4, AdjustEvery: 1 << 30,
		},
		BackendLatency: lat,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer cl.Close()

	var hotSheds atomic.Int64
	stopHot := e13HotLoad(cl, 0, 8, lat, &hotSheds)
	defer stopHot()
	// Steady state: node 0's two slots busy and the hot user's queue at
	// its cap, so the node's digest will advertise pressure.
	if err := e13WaitFor("hot backlog on node 0", func() bool {
		return cl.Scheduler(0).Stats().Queued >= 4
	}); err != nil {
		return 0, 0, 0, 0, err
	}
	if coordinate {
		cl.Tick() // publish pressured digest
		cl.Tick() // every node (and the balancer) sees it
	}

	const victims = 3
	blocks := 3
	roundsPerBlock := 2 + 2*s.Repeat
	blockLat := make([][]time.Duration, blocks)
	var mu sync.Mutex
	for b := 0; b < blocks; b++ {
		for r := 0; r < roundsPerBlock; r++ {
			var wg sync.WaitGroup
			for v := 0; v < victims; v++ {
				wg.Add(1)
				go func(v int) {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					defer cancel()
					q := clustertest.DistinctQuery(e13Query())
					t0 := time.Now()
					_, qerr := cl.Dispatch(ctx, fmt.Sprintf("victim-%d", v), q)
					d := time.Since(t0)
					if qerr != nil {
						return // sheds/timeouts just shrink the sample
					}
					mu.Lock()
					blockLat[b] = append(blockLat[b], d)
					mu.Unlock()
				}(v)
			}
			wg.Wait()
			if coordinate {
				cl.Tick() // keep digests (and steering pressure) fresh
			}
		}
	}
	stopHot()

	var p50s, p99s []time.Duration
	for b, lats := range blockLat {
		if len(lats) == 0 {
			return 0, 0, 0, 0, fmt.Errorf("e13 steer (coordinate=%v): block %d completed no renders", coordinate, b)
		}
		renders += len(lats)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p50s = append(p50s, lats[len(lats)/2])
		p99s = append(p99s, lats[len(lats)*99/100])
	}
	sort.Slice(p50s, func(i, j int) bool { return p50s[i] < p50s[j] })
	sort.Slice(p99s, func(i, j int) bool { return p99s[i] < p99s[j] })
	for i := 0; i < 3; i++ {
		clusterSheds += cl.Scheduler(i).Stats().ShedClusterPressure
	}
	return renders, p50s[len(p50s)/2], p99s[len(p99s)/2], clusterSheds, nil
}

// e13Majority: the hot user saturates nodes 0-1 (4 sticky sessions
// each) and keeps 3 closed-loop sessions on node 2 — exactly at node 2's
// local bounds (1 slot + 2-deep user queue), so per-node admission never
// sheds them. Returns how many of the 3 nodes shed the hot user at all,
// and the cluster-pressure shed count on the calm node.
func e13Majority(s Scale, coordinate bool) (nodesShedding int, clusterSheds int64, err error) {
	lat := e13Latency(s)
	cl, err := clustertest.New(clustertest.Config{
		Nodes:   3,
		Rows:    2000,
		PoolMax: 1,
		Scheduler: sched.Config{
			Limit: 1, MinLimit: 1, MaxLimit: 1,
			MaxQueue: 4, MaxUserQueue: 2, MaxSessionQueue: 4,
			AdjustEvery: 1 << 30,
		},
		BackendLatency: lat,
	})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()

	sheds := make([]atomic.Int64, 3)
	for i, workers := range []int{4, 4, 3} {
		stop := e13HotLoad(cl, i, workers, lat, &sheds[i])
		defer stop()
	}
	if err := e13WaitFor("hot overload on nodes 0-1", func() bool {
		return sheds[0].Load() > 0 && sheds[1].Load() > 0
	}); err != nil {
		return 0, 0, err
	}

	if coordinate {
		cl.Tick() // nodes 0-1 publish pressured digests; node 2 arms the clamp
		if err := e13WaitFor("cluster clamp shedding on node 2", func() bool {
			return cl.Scheduler(2).Stats().ShedClusterPressure > 0
		}); err != nil {
			return 0, 0, err
		}
	}
	// Hold the regime for a few publish intervals either way, so both
	// arms observe the same wall-clock window.
	for i := 0; i < 4; i++ {
		time.Sleep(lat) //vizlint:allow sleep -- holding the overload regime for a fixed observation window
		if coordinate {
			cl.Tick()
		}
	}

	for i := range sheds {
		if sheds[i].Load() > 0 {
			nodesShedding++
		}
	}
	return nodesShedding, cl.Scheduler(2).Stats().ShedClusterPressure, nil
}

// e13Convergence: three schedulers for the same source start with limits
// {1,4,2} and frozen local governors. Coordinated, they publish through
// one in-process bus and each ObservePeers nudges one step toward the
// fleet mean; per-node-only, nothing moves. Returns max-min limit after
// four publish rounds. This phase is fully deterministic: no queries, no
// goroutines, a hand-advanced clock.
func e13Convergence(coordinate bool) (spread int, err error) {
	limits := []int{1, 4, 2}
	scheds := make([]*sched.Scheduler, len(limits))
	for i, lim := range limits {
		scheds[i] = sched.New(sched.Config{
			Limit: lim, MinLimit: 1, MaxLimit: 8, AdjustEvery: 1 << 30,
		})
	}
	if coordinate {
		bus := kvstore.NewLocalBus(kvstore.NewStore(0))
		now := time.Unix(1_723_000_000, 0)
		coords := make([]*sched.Coordinator, len(scheds))
		for i, sc := range scheds {
			c, err := sched.NewCoordinator(sched.ClusterConfig{
				Node: fmt.Sprintf("node-%d", i),
				Bus:  bus,
				Clock: func() time.Time {
					return now
				},
			})
			if err != nil {
				return 0, err
			}
			c.Register("flights", sc)
			coords[i] = c
		}
		for round := 0; round < 4; round++ {
			now = now.Add(coords[0].Interval())
			for _, c := range coords {
				c.Step(now)
			}
		}
	}
	lo, hi := scheds[0].Stats().Limit, scheds[0].Stats().Limit
	for _, sc := range scheds[1:] {
		l := sc.Stats().Limit
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	return hi - lo, nil
}
