package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestAllExperimentsRun executes every experiment at test scale and checks
// the structural invariants each claim predicts, so a regression in any
// pipeline layer breaks this test rather than silently flattening a curve.
func TestAllExperimentsRun(t *testing.T) {
	s := TestScale()
	tables := map[string]*Table{}
	for _, r := range All() {
		table, err := r.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if table.ID != r.ID || len(table.Rows) == 0 || len(table.Header) == 0 {
			t.Fatalf("%s: malformed table %+v", r.ID, table)
		}
		for _, row := range table.Rows {
			if len(row) != len(table.Header) {
				t.Fatalf("%s: ragged row %v", r.ID, row)
			}
		}
		tables[r.ID] = table
	}

	// E1: the partitioned strategies must send fewer remote queries.
	e1 := tables["E1"]
	serialSent := atoiCell(t, e1.Rows[0][1])
	partitionedSent := atoiCell(t, e1.Rows[2][1])
	if partitionedSent >= serialSent {
		t.Errorf("E1: partition should cut remote queries: %d vs %d", partitionedSent, serialSent)
	}

	// E2: fused always sends exactly one query.
	for _, row := range tables["E2"].Rows {
		if row[1] == "fused" && row[2] != "1" {
			t.Errorf("E2: fused sent %s queries", row[2])
		}
	}

	// E4: intelligent caching must cut backend queries by an integer factor.
	e4 := tables["E4"]
	none := atoiCell(t, e4.Rows[0][1])
	intelligent := atoiCell(t, e4.Rows[2][1])
	distributed := atoiCell(t, e4.Rows[3][1])
	if intelligent >= none || distributed > intelligent {
		t.Errorf("E4: backend queries %d -> %d -> %d", none, intelligent, distributed)
	}

	// E6: the index scan must win at the most selective point.
	e6 := tables["E6"]
	full := msCell(t, e6.Rows[0][1])
	idx := msCell(t, e6.Rows[0][2])
	if idx >= full {
		t.Errorf("E6: index scan (%v) should beat full scan (%v) at 0.1%%", idx, full)
	}

	// E7: shadow extract must win by n=10.
	e7 := tables["E7"]
	last := e7.Rows[len(e7.Rows)-1]
	if msCell(t, last[2]) >= msCell(t, last[1]) {
		t.Errorf("E7: shadow (%s) should beat reparse (%s) at n=10", last[2], last[1])
	}

	// E9: the published extract must pull far less than the embedded copies.
	e9 := tables["E9"]
	embeddedPulls := atoiCell(t, e9.Rows[0][2])
	publishedPulls := atoiCell(t, e9.Rows[1][2])
	if publishedPulls >= embeddedPulls {
		t.Errorf("E9: published pulls %d should be < embedded %d", publishedPulls, embeddedPulls)
	}

	// E8: the temp-table text size must be constant while inline grows.
	e8 := tables["E8"]
	var inlineSizes, tempSizes []int
	for _, row := range e8.Rows {
		if row[1] == "inline IN list" {
			inlineSizes = append(inlineSizes, atoiCell(t, row[2]))
		} else {
			tempSizes = append(tempSizes, atoiCell(t, row[2]))
		}
	}
	if inlineSizes[len(inlineSizes)-1] <= inlineSizes[0] {
		t.Error("E8: inline text should grow with filter size")
	}
	for _, s := range tempSizes[1:] {
		if s != tempSizes[0] {
			t.Error("E8: temp-table text should be constant")
		}
	}

	// E10: resilience must cut outage errors by >= 10x, serve stale answers,
	// and show breaker fast-fails; both arms must recover after the heal.
	e10 := tables["E10"]
	baseErrs := atoiCell(t, e10.Rows[0][2])
	resErrs := atoiCell(t, e10.Rows[1][2])
	if resErrs*10 > baseErrs {
		t.Errorf("E10: resilient errors %d vs baseline %d, want >=10x fewer", resErrs, baseErrs)
	}
	if stale := atoiCell(t, e10.Rows[1][5]); stale == 0 {
		t.Error("E10: resilient arm served no stale answers")
	}
	if ff := atoiCell(t, e10.Rows[1][6]); ff == 0 {
		t.Error("E10: breaker recorded no fast-fails")
	}
	if msCell(t, e10.Rows[1][4]) >= msCell(t, e10.Rows[0][4]) {
		t.Errorf("E10: resilient p99 (%s ms) should beat baseline p99 (%s ms)",
			e10.Rows[1][4], e10.Rows[0][4])
	}
	for i, mode := range []string{"baseline", "resilient"} {
		if e10.Rows[i][7] != "true" {
			t.Errorf("E10: %s arm did not recover after heal", mode)
		}
	}
	if !strings.Contains(e10.Stages, "breaker fast-fail") {
		t.Error("E10: stage trace missing the breaker fast-fail section")
	}

	// E11: the scheduler must convert slow timeouts into fast sheds and
	// keep the completed queries' p99 bounded. Goodput is reported but not
	// hard-asserted: at exactly pool capacity both arms complete similar
	// counts — the off arm's damage is latency and wasted waits, not
	// throughput.
	e11 := tables["E11"]
	offRow, onRow := e11.Rows[0], e11.Rows[1]
	if st := atoiCell(t, offRow[4]); st == 0 {
		t.Error("E11: ungoverned arm saw no slow timeouts at 4x saturation")
	}
	if st := atoiCell(t, onRow[4]); st != 0 {
		t.Errorf("E11: scheduler arm had %s slow timeouts, want 0", onRow[4])
	}
	if sheds := atoiCell(t, onRow[3]); sheds == 0 {
		t.Error("E11: scheduler arm shed nothing under 4x overload")
	}
	if msCell(t, onRow[6]) >= msCell(t, offRow[6]) {
		t.Errorf("E11: scheduler p99 (%s ms) should beat ungoverned p99 (%s ms)",
			onRow[6], offRow[6])
	}
	// A shed is useful only if it is fast: the client must learn "no" in
	// microseconds, not after burning its budget.
	if maxShed := msCell(t, onRow[7]); maxShed > 10*time.Millisecond {
		t.Errorf("E11: slowest shed took %s ms, want a few ms at most", onRow[7])
	}

	// E12: hierarchical user WRR must hold a single-session user's renders
	// near the uncontended floor while flat session WRR lets the greedy
	// user's 8 sessions take 8 of every 11 dequeues. The ratio column is
	// paired round-by-round against the uncontended arm (see the
	// experiment's notes), so these bounds hold on a noisy host too.
	e12 := tables["E12"]
	baseRow, flatRow, userRow := e12.Rows[0], e12.Rows[1], e12.Rows[2]
	if n := atoiCell(t, baseRow[1]); n == 0 {
		t.Error("E12: uncontended arm completed no renders")
	}
	for _, row := range [][]string{flatRow, userRow} {
		if n := atoiCell(t, row[5]); n == 0 {
			t.Errorf("E12: %s arm's greedy user completed nothing", row[0])
		}
	}
	if r := ratioCell(t, flatRow[4]); r < 3.0 {
		t.Errorf("E12: flat session WRR degraded victims only %.2fx, want >= 3x", r)
	}
	if r := ratioCell(t, userRow[4]); r > 1.5 {
		t.Errorf("E12: user-level WRR held victims at %.2fx uncontended, want <= 1.5x", r)
	}

	// E13: coordination must steer victims off the hot node (better p99)
	// without clamping on a minority, shed a majority-hot source on every
	// node, and converge divergent limits to a spread of <=1.
	e13 := tables["E13"]
	steerOff, steerOn := e13.Rows[0], e13.Rows[1]
	if atoiCell(t, steerOff[3]) == 0 || atoiCell(t, steerOn[3]) == 0 {
		t.Error("E13: a steering arm completed no victim renders")
	}
	if msCell(t, steerOn[5]) >= msCell(t, steerOff[5]) {
		t.Errorf("E13: coordinated victim p99 (%s ms) should beat per-node-only (%s ms)",
			steerOn[5], steerOff[5])
	}
	if steerOn[2] != "0" {
		t.Errorf("E13: one pressured node is a minority and must not clamp, got %s cluster sheds", steerOn[2])
	}
	majOff, majOn := e13.Rows[2], e13.Rows[3]
	if majOff[1] != "2/3" {
		t.Errorf("E13: per-node-only should shed the hot user on 2/3 nodes, got %s", majOff[1])
	}
	if majOff[2] != "0" {
		t.Errorf("E13: per-node-only arm recorded %s cluster sheds, want 0", majOff[2])
	}
	if majOn[1] != "3/3" {
		t.Errorf("E13: coordinated shedding must be fleet-consistent (3/3), got %s", majOn[1])
	}
	if atoiCell(t, majOn[2]) == 0 {
		t.Error("E13: the calm node recorded no cluster-pressure sheds under a majority-hot fleet")
	}
	if e13.Rows[4][6] != "3" {
		t.Errorf("E13: uncoordinated limits should stay at spread 3, got %s", e13.Rows[4][6])
	}
	if sp := atoiCell(t, e13.Rows[5][6]); sp > 1 {
		t.Errorf("E13: coordinated limit spread = %d, want <= 1", sp)
	}

	// E14: an abrupt rolling restart must surface user-visible errors;
	// drain+failover must complete the same restart with zero, with real
	// renders, session moves, and fast "draining" sheds for stragglers.
	// The lifecycle rows pin ejection and probe-only re-admission.
	e14 := tables["E14"]
	abrupt, graceful := e14.Rows[0], e14.Rows[1]
	if atoiCell(t, abrupt[1]) == 0 {
		t.Error("E14: abrupt rolling restart surfaced no user-visible errors")
	}
	if n := atoiCell(t, graceful[1]); n != 0 {
		t.Errorf("E14: drain+failover restart surfaced %d user errors, want 0", n)
	}
	if atoiCell(t, abrupt[2]) == 0 || atoiCell(t, graceful[2]) == 0 {
		t.Error("E14: a restart arm completed no renders")
	}
	if atoiCell(t, graceful[3]) == 0 {
		t.Error("E14: no session failed over during the graceful restart")
	}
	if atoiCell(t, graceful[4]) == 0 {
		t.Error("E14: no straggler was shed with reason draining")
	}
	if e14.Rows[2][5] != "ejected" {
		t.Errorf("E14: post-kill state = %s, want ejected", e14.Rows[2][5])
	}
	if e14.Rows[3][5] != "healthy" {
		t.Errorf("E14: post-probe state = %s, want healthy", e14.Rows[3][5])
	}
}

func atoiCell(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("bad int cell %q", s)
	}
	return n
}

// ratioCell parses a "3.67x" speedup/slowdown cell.
func ratioCell(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q", s)
	}
	return f
}

func msCell(t *testing.T, s string) time.Duration {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("bad ms cell %q", s)
	}
	return time.Duration(f * float64(time.Millisecond))
}

func TestTableString(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Claim: "c",
		Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	out := tab.String()
	for _, want := range []string{"EX — demo", "claim: c", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestScalePresets(t *testing.T) {
	if TestScale().Rows >= FullScale().Rows {
		t.Error("test scale should be smaller")
	}
	if len(All()) != 14 {
		t.Errorf("experiments = %d, want 14", len(All()))
	}
}
