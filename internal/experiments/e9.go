package experiments

import (
	"context"
	"fmt"
	"time"

	"vizq/internal/core"
	"vizq/internal/dataserver"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
)

// E9PublishedVsEmbeddedExtracts reproduces the Data Server motivation of
// Sect. 5.1-5.2: "instead of 100 workbooks with distinct copies of the same
// extract, a single extract is created. Refreshing a single extract daily —
// rather than all copies of it — significantly reduces the query load on
// the underlying database" (and the redundant disk those copies consume).
func E9PublishedVsEmbeddedExtracts(s Scale) (*Table, error) {
	live, err := startRemote(s.RemoteRows, remote.Config{Latency: s.Latency})
	if err != nil {
		return nil, err
	}
	defer live.Close()

	t := &Table{
		ID:     "E9",
		Title:  "published extract vs per-workbook embedded extracts",
		Claim:  "publishing one shared extract to Data Server removes the redundant refresh load and disk that per-workbook extract copies cost",
		Header: []string{"strategy", "workbooks", "refresh pulls on live DB", "refresh ms", "extract copies (bytes)"},
	}
	const workbooks = 10

	// Embedded: every workbook refreshes its own copy of the extract.
	before := live.Stats().Queries
	start := time.Now()
	var bytesTotal int64
	for w := 0; w < workbooks; w++ {
		conn, err := remote.Dial(live.Addr())
		if err != nil {
			return nil, err
		}
		res, err := conn.Query(context.Background(), "(table flights)")
		conn.Close()
		if err != nil {
			return nil, err
		}
		if _, err := engine.ResultToTable("Extract", "flights", res); err != nil {
			return nil, err
		}
		bytesTotal += res.SizeBytes()
	}
	embeddedMS := time.Since(start)
	embeddedPulls := live.Stats().Queries - before
	t.Rows = append(t.Rows, []string{"embedded (copy per workbook)", fmt.Sprint(workbooks),
		fmt.Sprint(embeddedPulls), ms(embeddedMS), fmt.Sprint(bytesTotal)})

	// Published: one Data Server extract shared by all workbooks.
	ds := dataserver.NewServer(dataserver.Config{PipelineOptions: core.DefaultOptions()})
	src := &dataserver.PublishedSource{
		Name:    "Shared Flights",
		Backend: live.Addr(),
		View:    query.View{Table: "flights"},
	}
	before = live.Stats().Queries
	start = time.Now()
	if err := ds.PublishExtract(src); err != nil {
		return nil, err
	}
	defer ds.Unpublish("Shared Flights")
	if err := ds.RefreshExtract("Shared Flights"); err != nil {
		return nil, err
	}
	publishedMS := time.Since(start)
	publishedPulls := live.Stats().Queries - before
	t.Rows = append(t.Rows, []string{"published (one shared extract)", fmt.Sprint(workbooks),
		fmt.Sprint(publishedPulls), ms(publishedMS), fmt.Sprint(bytesTotal / workbooks)})

	// And the workbooks still get their data: every "workbook" queries the
	// shared source.
	var clientTotal int64
	for w := 0; w < workbooks; w++ {
		conn, _, err := ds.Connect("Shared Flights", fmt.Sprintf("user%d", w))
		if err != nil {
			return nil, err
		}
		res, err := conn.Query(context.Background(), &query.Query{
			Measures: []query.Measure{{Fn: query.Count, As: "n"}},
		})
		conn.Close()
		if err != nil {
			return nil, err
		}
		clientTotal += res.Value(0, 0).I
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"all %d workbooks served from the shared extract (%d rows each) without touching the live database",
		workbooks, clientTotal/int64(workbooks)))
	return t, nil
}
