#!/usr/bin/env bash
# Coverage ratchet: the packages that guard correctness under failure
# (wire protocol, pool, caches, resilience) must not silently lose test
# coverage. Floors are set ~2 points under the measured coverage at the
# time each package was last touched; raise a floor when you raise the
# coverage, never lower one to make a change fit.
#
# Run from anywhere; scripts/check.sh and CI both call this.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

check() {
    local pkg="$1" floor="$2"
    local out pct
    out="$(go test -cover "$pkg" | tail -1)"
    pct="$(sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p' <<<"$out")"
    if [[ -z "$pct" ]]; then
        echo "coverage FAILED: no coverage figure for $pkg (got: $out)" >&2
        fail=1
        return
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit (p+0 >= f+0) ? 1 : 0 }'; then
        echo "coverage FAILED: $pkg at ${pct}%, floor is ${floor}%" >&2
        fail=1
    else
        echo "coverage OK: $pkg ${pct}% (floor ${floor}%)"
    fi
}

check ./internal/remote     77.8
check ./internal/kvstore    88.4
check ./internal/connection 87.3
check ./internal/cache      90.6
check ./internal/resilience 91.2
check ./internal/sched      93.5
check ./internal/dataserver 90.8
check ./cmd/vizlint         85.8

exit "$fail"
