#!/usr/bin/env bash
# Full static-analysis and race gate for the vizq tree.
#
#   scripts/check.sh          run everything
#   SKIP_RACE=1 scripts/check.sh   skip the (slower) race-detector pass
#
# The same commands run in CI (.github/workflows/check.yml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== vizlint ./..."
go run ./cmd/vizlint ./...

echo "== vizlint ./cmd/... (self-lint)"
go run ./cmd/vizlint ./cmd/...

if [[ "${SKIP_RACE:-0}" != "1" ]]; then
    echo "== go test -race -shuffle=on ./..."
    go test -race -shuffle=on ./...
else
    echo "== go test -shuffle=on ./... (race pass skipped)"
    go test -shuffle=on ./...
fi

echo "== cluster kill/restart smoke (clustertest lifecycle)"
go test -run TestLifecycleKillRestartSmoke ./internal/clustertest -count=1

echo "== metrics smoke (loadsim -metrics json)"
scripts/metrics_smoke.sh

echo "== coverage ratchet"
scripts/coverage_check.sh

echo "OK"
