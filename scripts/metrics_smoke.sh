#!/usr/bin/env bash
# Metrics smoke test: a short loadsim run must produce well-formed,
# non-empty metrics. The instrumentation layer is load-bearing for the
# benchrunner stage breakdowns, so an accidentally dead counter path
# should fail the gate, not ship. Run from the repo root (scripts/check.sh
# and CI both do).
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(go run ./cmd/loadsim -users 2 -interactions 1 -rows 5000 -latency 1ms -sched -metrics json)"
# The JSON dump follows the human-readable report; it starts at the first
# line holding a lone "{".
metrics_json="$(awk 'f||/^\{$/{f=1;print}' <<<"$out")"
if [[ -z "$metrics_json" ]]; then
    echo "metrics smoke FAILED: no JSON object in loadsim -metrics json output" >&2
    exit 1
fi
for key in '"remote.roundtrip.ns"' '"pool.acquire.wait.ns"' '"pool.acquire.total.ns"' \
           '"core.batch.size"' '"cache.literal.hits"' \
           '"cache.singleflight.leader"' '"cache.singleflight.shared"' \
           '"cache.literal.evict_sampled"' '"cache.intelligent.evict_sampled"' \
           '"cache.distributed.errors"' '"cache.stale_served"' \
           '"resilience.retry.attempts"' '"resilience.breaker.fast_fails"' \
           '"sched.admitted"' '"sched.admitted.direct"' '"sched.inflight"' \
           '"sched.limit"' '"sched.service.ns"' '"sched.user.queued"'; do
    if ! grep -q "$key" <<<"$metrics_json"; then
        echo "metrics smoke FAILED: $key missing from loadsim -metrics json output" >&2
        exit 1
    fi
done
if ! python3 -c 'import json,sys; json.load(sys.stdin)' <<<"$metrics_json" 2>/dev/null; then
    echo "metrics smoke FAILED: loadsim -metrics json emitted malformed JSON" >&2
    exit 1
fi
# Every remote miss runs through the single-flight layer as a leader, so a
# run that issued remote queries must report a non-zero leader count — a
# zero here means the coalescing path is dead code.
if ! python3 -c '
import json, sys
m = json.load(sys.stdin)
c = m.get("counters", m)
v = c.get("cache.singleflight.leader", 0)
sys.exit(0 if v > 0 else 1)
' <<<"$metrics_json" 2>/dev/null; then
    echo "metrics smoke FAILED: cache.singleflight.leader never incremented" >&2
    exit 1
fi
# With -sched, every remote execution passes through admission control, so
# the admitted counter must be non-zero — a zero means the scheduler is
# wired up but silently bypassed.
if ! python3 -c '
import json, sys
m = json.load(sys.stdin)
c = m.get("counters", m)
v = c.get("sched.admitted", 0)
sys.exit(0 if v > 0 else 1)
' <<<"$metrics_json" 2>/dev/null; then
    echo "metrics smoke FAILED: sched.admitted never incremented" >&2
    exit 1
fi
# Fleet mode: a 3-node coordinated run must publish load digests and see
# peers — the sched.cluster.* series are the observable surface of
# cross-node admission coordination, so a silent coordinator should fail
# the gate here.
cluster_out="$(go run ./cmd/loadsim -cluster 3 -users 3 -interactions 1 -rows 5000 -latency 1ms -metrics json)"
cluster_json="$(awk 'f||/^\{$/{f=1;print}' <<<"$cluster_out")"
if [[ -z "$cluster_json" ]]; then
    echo "metrics smoke FAILED: no JSON object in loadsim -cluster output" >&2
    exit 1
fi
for key in '"sched.cluster.publish"' '"sched.cluster.publish_errors"' \
           '"sched.cluster.list_errors"' '"sched.cluster.stale_digests"' \
           '"sched.cluster.shed"' '"sched.cluster.converge"' \
           '"sched.cluster.peers"' '"sched.cluster.digest_age_ms"' \
           '"sched.cluster.fleet_limit"'; do
    if ! grep -q "$key" <<<"$cluster_json"; then
        echo "metrics smoke FAILED: $key missing from loadsim -cluster metrics" >&2
        exit 1
    fi
done
if ! python3 -c '
import json, sys
m = json.load(sys.stdin)
c = m.get("counters", m)
g = m.get("gauges", {})
def gv(k):
    v = g.get(k, 0)
    return v.get("value", 0) if isinstance(v, dict) else v
sys.exit(0 if c.get("sched.cluster.publish", 0) > 0 and gv("sched.cluster.peers") > 0 else 1)
' <<<"$cluster_json" 2>/dev/null; then
    echo "metrics smoke FAILED: cluster run published no digests or saw no peers" >&2
    exit 1
fi
# An unloaded run admits on the fast path, so the direct-admission counter
# must be non-zero — and those admissions must NOT flood the wait
# histogram with zeros: its count is bounded by the queued admissions.
if ! python3 -c '
import json, sys
m = json.load(sys.stdin)
c = m.get("counters", m)
direct = c.get("sched.admitted.direct", 0)
total = c.get("sched.admitted", 0)
waits = m.get("histograms", {}).get("sched.wait.ns", {}).get("count", 0)
sys.exit(0 if direct > 0 and waits <= total - direct else 1)
' <<<"$metrics_json" 2>/dev/null; then
    echo "metrics smoke FAILED: direct admissions missing or leaking into sched.wait.ns" >&2
    exit 1
fi
# Node lifecycle: a scripted rolling restart with drain-first must light
# up the whole health surface — ejection by blame, half-open probes,
# probe-based re-admission — and shed queued work with reason "draining".
# These series are the observable contract of the lifecycle layer; a dead
# counter here means ops dashboards go blind during real restarts.
restart_out="$(go run ./cmd/loadsim -cluster 3 -users 3 -interactions 3 -rows 5000 -latency 1ms -restart 0:1:2 -drainfirst -metrics json)"
restart_json="$(awk 'f||/^\{$/{f=1;print}' <<<"$restart_out")"
if [[ -z "$restart_json" ]]; then
    echo "metrics smoke FAILED: no JSON object in loadsim -restart output" >&2
    exit 1
fi
for key in '"balancer.health.suspect"' '"balancer.health.eject"' \
           '"balancer.health.probe"' '"balancer.health.probe_fail"' \
           '"balancer.health.readmit"' '"balancer.health.retries"' \
           '"balancer.health.ejected"' '"sched.shed.draining"'; do
    if ! grep -q "$key" <<<"$restart_json"; then
        echo "metrics smoke FAILED: $key missing from loadsim -restart metrics" >&2
        exit 1
    fi
done
if ! python3 -c '
import json, sys
m = json.load(sys.stdin)
c = m.get("counters", m)
need = ["balancer.health.eject", "balancer.health.probe",
        "balancer.health.readmit", "sched.shed.draining"]
sys.exit(0 if all(c.get(k, 0) > 0 for k in need) else 1)
' <<<"$restart_json" 2>/dev/null; then
    echo "metrics smoke FAILED: rolling restart left eject/probe/readmit/draining-shed counters at zero" >&2
    exit 1
fi
echo "metrics smoke OK"
