module vizq

go 1.22
